// Package zen2ee is a simulation-backed reproduction of "Energy Efficiency
// Aspects of the AMD Zen 2 Architecture" (Schöne et al., IEEE CLUSTER 2021,
// arXiv:2108.00808).
//
// It models the power-management architecture of a dual-socket AMD EPYC
// 7502 ("Rome") system — core P-states with their 1 ms transition-slot grid,
// CCX frequency coupling, the SMU's EDC manager, C-states with package deep
// sleep, I/O-die P-states, the modeled (not measured) RAPL energy interface
// — and ships the paper's complete measurement-benchmark suite re-targeted
// at the model, regenerating every table and figure.
//
// Quick start:
//
//	sys := zen2ee.NewSystem()
//	sys.SetAllFrequenciesMHz(2500)
//	for cpu := 0; cpu < sys.NumCPUs(); cpu++ {
//	    sys.Run(cpu, "firestarter")
//	}
//	sys.AdvanceMillis(500)
//	fmt.Printf("%.0f W at %.2f GHz\n", sys.PowerWatts(), sys.CoreGHz(0))
//
// The experiment registry exposes every paper artifact:
//
//	res, _ := zen2ee.RunExperiment("fig3", zen2ee.DefaultOptions())
//	fmt.Print(res.Table())
package zen2ee

import (
	"fmt"

	"zen2ee/internal/core"
	"zen2ee/internal/cstate"
	"zen2ee/internal/iodie"
	"zen2ee/internal/machine"
	"zen2ee/internal/measure"
	"zen2ee/internal/phases"
	"zen2ee/internal/sim"
	"zen2ee/internal/soc"
	"zen2ee/internal/workload"
)

// System is a simulated Zen 2 test system (dual EPYC 7502 by default).
type System struct {
	m *machine.Machine
}

// Option customizes a System.
type Option func(*machine.Config)

// WithSeed sets the simulation seed (default 1; simulations are
// deterministic per seed).
func WithSeed(seed uint64) Option {
	return func(c *machine.Config) { c.Seed = seed }
}

// WithoutCCXCoupling ablates the Table I mixed-frequency penalty.
func WithoutCCXCoupling() Option {
	return func(c *machine.Config) { c.DVFS.CouplingEnabled = false }
}

// WithoutEDCManager disables the SMU's throttle loops (EDC and PPT) for
// ablation runs. Note: with only the EDC limit removed, the package-power
// (TDP) loop becomes binding under FIRESTARTER at ~2.12 GHz — remove both
// to observe unthrottled behaviour.
func WithoutEDCManager() Option {
	return func(c *machine.Config) {
		c.SMU.EDCAmps = 1e12
		c.SMU.TDPWatts = 0
	}
}

// WithoutOfflineAnomaly ablates the §VI-B offline-thread C1 elevation.
func WithoutOfflineAnomaly() Option {
	return func(c *machine.Config) { c.CState.OfflineElevatesToC1 = false }
}

// WithBoost enables Core Performance Boost: the SMU grants clocks above
// nominal (up to the part's single-core maximum, descending ~30 MHz per
// active core beyond the first four), still subject to EDC/PPT limits.
func WithBoost() Option {
	return func(c *machine.Config) {
		c.SMU.BoostMHz = float64(c.SoC.BoostMHz)
		c.SMU.BoostFreeCores = 4
		c.SMU.BoostSlopeMHz = 30
	}
}

// WithIntelSlotGrid switches the DVFS transition timing to the Intel
// Haswell parameters (500 µs grid, 21–24 µs ramps) for comparison runs.
func WithIntelSlotGrid() Option {
	return func(c *machine.Config) {
		c.DVFS.SlotPeriod = 500 * sim.Microsecond
		c.DVFS.RampUp = 21 * sim.Microsecond
		c.DVFS.RampDown = 24 * sim.Microsecond
	}
}

// NewSystem builds the paper's test system.
func NewSystem(opts ...Option) *System {
	cfg := machine.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &System{m: machine.New(cfg)}
}

// Machine exposes the underlying machine for advanced use within this
// module (the cmd/ tools use it).
func (s *System) Machine() *machine.Machine { return s.m }

// NumCPUs returns the number of logical CPUs (hardware threads).
func (s *System) NumCPUs() int { return s.m.Top.NumThreads() }

// NumCores returns the number of physical cores.
func (s *System) NumCores() int { return s.m.Top.NumCores() }

// Kernels lists the available workload kernel names.
func Kernels() []string {
	var out []string
	for _, k := range workload.All() {
		out = append(out, k.Name)
	}
	return out
}

// Run starts a named kernel on a logical CPU (waking it if idle).
func (s *System) Run(cpu int, kernel string) error {
	return s.RunWeighted(cpu, kernel, 0)
}

// RunWeighted starts a kernel with an operand Hamming weight (0..1), for
// the data-dependent-power kernels vxorps and shr.
func (s *System) RunWeighted(cpu int, kernel string, weight float64) error {
	k, err := workload.ByName(kernel)
	if err != nil {
		return err
	}
	_, err = s.m.StartKernel(soc.ThreadID(cpu), k, weight)
	return err
}

// Stop idles a CPU; the idle governor selects the deepest enabled C-state.
func (s *System) Stop(cpu int) { s.m.StopKernel(soc.ThreadID(cpu)) }

// SetFrequencyMHz pins one CPU's requested frequency (userspace governor).
// Note the paper's §V-A finding: the core follows the *highest* request of
// its two hardware threads, idle or offline threads included.
func (s *System) SetFrequencyMHz(cpu, mhz int) error {
	return s.m.SetThreadFrequencyMHz(soc.ThreadID(cpu), mhz)
}

// SetAllFrequenciesMHz pins every CPU's request.
func (s *System) SetAllFrequenciesMHz(mhz int) error {
	return s.m.SetAllFrequenciesMHz(mhz)
}

// SetOnline flips a CPU's sysfs online state. Beware §VI-B: offline
// threads block package deep sleep until re-onlined.
func (s *System) SetOnline(cpu int, online bool) error {
	return s.m.SetOnline(soc.ThreadID(cpu), online)
}

// SetCStateEnabled toggles an idle state (1 = C1, 2 = C2) on one CPU.
func (s *System) SetCStateEnabled(cpu, state int, enabled bool) error {
	return s.m.SetCStateEnabled(soc.ThreadID(cpu), cstate.State(state), enabled)
}

// IODieSettings lists the selectable I/O-die P-state names.
func IODieSettings() []string {
	var out []string
	for _, x := range iodie.Settings() {
		out = append(out, x.String())
	}
	return out
}

// SetIODieSetting selects the I/O-die P-state by name ("auto", "P0".."P3").
func (s *System) SetIODieSetting(name string) error {
	for _, x := range iodie.Settings() {
		if x.String() == name {
			s.m.SetIODSetting(x)
			return nil
		}
	}
	return fmt.Errorf("zen2ee: unknown I/O-die setting %q", name)
}

// SetDRAMClockMHz selects the DRAM frequency (1467 or 1600 on the paper's
// system; other values interpolate/clamp).
func (s *System) SetDRAMClockMHz(mhz int) { s.m.SetDRAMClock(mhz) }

// AdvanceMillis advances the simulation by ms milliseconds.
func (s *System) AdvanceMillis(ms float64) {
	s.m.Eng.RunFor(sim.DurationFromSeconds(ms / 1000))
}

// AdvanceMicros advances the simulation by µs microseconds.
func (s *System) AdvanceMicros(us float64) {
	s.m.Eng.RunFor(sim.DurationFromSeconds(us / 1e6))
}

// NowSeconds returns the simulation clock.
func (s *System) NowSeconds() float64 { return s.m.Eng.Now().Seconds() }

// PowerWatts returns the current true AC system power.
func (s *System) PowerWatts() float64 { return s.m.SystemWatts() }

// EnergyJoules returns the accumulated AC energy.
func (s *System) EnergyJoules() float64 { return s.m.EnergyJoules(s.m.Eng.Now()) }

// TempC returns the package temperature.
func (s *System) TempC() float64 { return s.m.TempC() }

// Preheat jumps the thermal model to steady state (the paper's 15-minute
// warm-up).
func (s *System) Preheat() { s.m.Preheat() }

// CoreGHz returns a core's effective frequency in GHz — after EDC
// throttling and CCX coupling.
func (s *System) CoreGHz(core int) float64 {
	return s.m.EffectiveMHz(soc.CoreID(core)) / 1000
}

// CoreOf maps a logical CPU to its physical core.
func (s *System) CoreOf(cpu int) int { return int(s.m.Top.Threads[cpu].Core) }

// SiblingOf maps a logical CPU to its SMT sibling.
func (s *System) SiblingOf(cpu int) int { return int(s.m.Top.Sibling(soc.ThreadID(cpu))) }

// RAPLPackageWatts measures the RAPL package domain over ms milliseconds of
// simulated time (advancing the simulation).
func (s *System) RAPLPackageWatts(pkg int, ms float64) float64 {
	e0 := s.m.RAPL.PackageEnergyJoules(soc.PackageID(pkg))
	t0 := s.m.Eng.Now()
	s.AdvanceMillis(ms)
	return (s.m.RAPL.PackageEnergyJoules(soc.PackageID(pkg)) - e0) /
		s.m.Eng.Now().Sub(t0).Seconds()
}

// RAPLCoreWatts measures a core's RAPL domain over ms milliseconds.
func (s *System) RAPLCoreWatts(core int, ms float64) float64 {
	e0 := s.m.RAPL.CoreEnergyJoules(soc.CoreID(core))
	t0 := s.m.Eng.Now()
	s.AdvanceMillis(ms)
	return (s.m.RAPL.CoreEnergyJoules(soc.CoreID(core)) - e0) /
		s.m.Eng.Now().Sub(t0).Seconds()
}

// WakeLatencyMicros reports the wake-up latency of an idle CPU in µs.
func (s *System) WakeLatencyMicros(cpu int, remote bool) float64 {
	return s.m.WakeLatency(soc.ThreadID(cpu), remote).Micros()
}

// CPUStat is a per-CPU counter snapshot delta.
type CPUStat struct {
	GHz float64 // cycles per wall-clock second
	IPC float64
}

// Stat samples a CPU over ms milliseconds (advancing the simulation).
func (s *System) Stat(cpu int, ms float64) CPUStat {
	t := soc.ThreadID(cpu)
	before := s.m.ReadCounters(t)
	t0 := s.m.Eng.Now()
	s.AdvanceMillis(ms)
	after := s.m.ReadCounters(t)
	secs := s.m.Eng.Now().Sub(t0).Seconds()
	dc := after.Cycles - before.Cycles
	st := CPUStat{GHz: dc / secs / 1e9}
	if dc > 0 {
		st.IPC = (after.Instructions - before.Instructions) / dc
	}
	return st
}

// L3LatencyNs returns the L3 latency a core observes (Fig. 4 model).
func (s *System) L3LatencyNs(core int) float64 {
	return s.m.L3LatencyNs(soc.CoreID(core))
}

// DRAMLatencyNs returns main-memory latency for the current I/O-die and
// DRAM configuration (Fig. 5b model).
func (s *System) DRAMLatencyNs() float64 { return s.m.DRAMLatencyNs() }

// MemoryTrafficGBs returns the currently-achieved DRAM traffic.
func (s *System) MemoryTrafficGBs() float64 { return s.m.TrafficGBs() }

// Meter is an attached external power analyzer (ZES LMG670 class).
type Meter struct {
	pa  *measure.PowerAnalyzer
	sys *System
}

// AttachMeter connects a reference power analyzer to the system.
func (s *System) AttachMeter() *Meter {
	return &Meter{pa: measure.NewPowerAnalyzer(s.m.Eng, measure.DefaultAnalyzerConfig(), s.m), sys: s}
}

// MeasureWatts runs the system for totalMs and returns the analyzer's
// inner-window average (the paper's 10 s / inner 8 s protocol, scaled).
func (mt *Meter) MeasureWatts(totalMs float64) (float64, error) {
	start := mt.sys.m.Eng.Now()
	total := sim.DurationFromSeconds(totalMs / 1000)
	mt.sys.m.Eng.RunFor(total)
	return mt.pa.InnerAverage(start, total, total*8/10)
}

// PhaseSpec is one step of a dynamic load pattern (see StartPattern).
// An empty Kernel means an idle phase.
type PhaseSpec struct {
	Kernel     string
	Weight     float64
	DurationMs float64
}

// StartPattern cycles the given CPUs through a FIRESTARTER-2-style dynamic
// load pattern (load/idle phases) until the returned stop function is
// called. The pattern exercises C-state entry/exit and EDC convergence
// dynamics.
func (s *System) StartPattern(cpus []int, spec []PhaseSpec) (stop func(), err error) {
	var ph []phases.Phase
	for _, p := range spec {
		d := sim.DurationFromSeconds(p.DurationMs / 1000)
		if p.Kernel == "" {
			ph = append(ph, phases.Idle(d))
			continue
		}
		k, err := workload.ByName(p.Kernel)
		if err != nil {
			return nil, err
		}
		ph = append(ph, phases.Phase{Kernel: k, Weight: p.Weight, Duration: d})
	}
	var threads []soc.ThreadID
	for _, c := range cpus {
		threads = append(threads, soc.ThreadID(c))
	}
	r := &phases.Runner{M: s.m, Threads: threads, Phases: ph}
	return r.Start()
}

// --- Experiment registry pass-through ---

// Options re-exports the experiment effort options. Options.Validate
// rejects the values Options.Normalize would silently coerce (non-positive
// or non-finite scales); API boundaries should validate, internal consumers
// normalize.
type Options = core.Options

// Result re-exports the experiment result type.
type Result = core.Result

// Experiment re-exports the registered experiment descriptor. An experiment
// is either monolithic (Run) or sharded (Plan): sharded experiments expose
// their independent units of work — fig7's sweep series, fig8's
// wake-latency matrix cells, the tab1/fig4 frequency grids — so the
// scheduler fans shards, not whole experiments, across its worker pool. For
// sharded experiments Run is synthesized as the serial plan execution, and
// both forms compute identical Results for the same Options.
type Experiment = core.Experiment

// Shard re-exports one independent unit of work within a sharded
// experiment. Shard seeds are derived from the experiment seed and the
// shard index (sim.DeriveSeed), so results are invariant to worker count
// and shard interleaving.
type Shard = core.Shard

// Reduce re-exports the deterministic combiner of a sharded experiment: it
// sees shard outputs in plan order regardless of completion order.
type Reduce = core.Reduce

// RunConfig re-exports the scheduler execution config: a worker count plus
// an optional external slot gate (Acquire), which services embedding the
// scheduler use to share one executor pool across concurrent runs.
type RunConfig = core.RunConfig

// DefaultOptions returns Scale 1, Seed 1.
func DefaultOptions() Options { return core.DefaultOptions() }

// Experiments lists every registered paper artifact in paper order.
func Experiments() []Experiment { return core.Registry() }

// RunExperiment executes one paper artifact by ID (e.g. "fig3", "tab1"),
// with the same derived per-experiment seed the suite runners use, so a
// lone rerun reproduces that experiment's section of the full suite.
func RunExperiment(id string, o Options) (*Result, error) {
	return core.RunOne(id, o)
}

// RunAllExperiments executes the full suite serially.
func RunAllExperiments(o Options) ([]*Result, error) { return core.RunAll(o) }

// Progress re-exports the scheduler's event type. Two kinds of event share
// it: shard events (Shard in 1..Shards) as a sharded experiment's units of
// work complete, and experiment-completion events (Shard == 0, i.e.
// ExperimentDone() true) — the events pre-shard consumers were built on.
// Done/Total always count experiments, never shards.
type Progress = core.Progress

// RunAllExperimentsParallel executes the full suite across a pool of
// workers goroutines (all CPUs if workers <= 0). Results are bit-identical
// to RunAllExperiments for the same Options; failures are joined into one
// error while the remaining results still come back.
func RunAllExperimentsParallel(o Options, workers int) ([]*Result, error) {
	return core.RunAllParallel(o, workers)
}

// RunAllExperimentsParallelProgress is RunAllExperimentsParallel with a
// per-experiment completion callback (serialized, must not block).
func RunAllExperimentsParallelProgress(o Options, workers int, progress func(Progress)) ([]*Result, error) {
	return core.RunAllParallelProgress(o, workers, progress)
}

// RunExperimentSet executes the named experiments (all of them when ids is
// empty) through the shard scheduler, with the same derived seeds the
// full-suite runners use — a subset run reproduces exactly those sections
// of a full run, byte-identically for every worker count. This is the
// entry point the zen2eed daemon serves jobs through.
func RunExperimentSet(ids []string, o Options, workers int, progress func(Progress)) ([]*Result, error) {
	return core.RunIDs(ids, o, workers, progress)
}

// RunExperimentSetConfig is RunExperimentSet with full scheduling control:
// RunConfig adds an optional Acquire gate letting an embedding service
// bound total shard concurrency across multiple concurrent runs while a
// lone run still spreads over the whole pool.
func RunExperimentSetConfig(ids []string, o Options, cfg RunConfig, progress func(Progress)) ([]*Result, error) {
	return core.RunIDsConfig(ids, o, cfg, progress)
}

// --- Sweeps: the batched (Scale, Seed) configuration grid ---

// Config re-exports one point of a sweep grid — a (Scale, Seed) pair. It
// is the same value type as Options under a name that reads as a grid
// point.
type Config = core.Config

// Sweep re-exports the batched run request: one experiment set (empty IDs
// = the full registry) evaluated at every listed configuration.
type Sweep = core.Sweep

// ConfigResult re-exports one configuration's section of a sweep outcome.
type ConfigResult = core.ConfigResult

// SweepResult re-exports the reduction of a sweep: per-configuration
// result sets in request order, each identical to the standalone
// RunExperimentSet output for that configuration.
type SweepResult = core.SweepResult

// Grid expands the Scales × Seeds cross-product into sweep configurations
// (scales outermost); an empty axis defaults to the single default value.
func Grid(scales []float64, seeds []uint64) []Config { return core.Grid(scales, seeds) }

// RunSweep executes a batched sweep: every (configuration, experiment,
// shard) triple is an independent unit fanned across one worker pool, so
// a multi-configuration sensitivity study saturates the same pool a
// single heavy run does instead of serializing configuration by
// configuration. Batching never changes results — each per-configuration
// section is byte-identical (through the canonical JSON document) to the
// standalone single-configuration run. Failures are partial, like the
// other schedulers: surviving sections come back alongside one joined
// error. This is the entry point the zen2eed daemon serves POST
// /v1/sweeps through.
func RunSweep(sw Sweep, cfg RunConfig, progress func(Progress)) (*SweepResult, error) {
	return core.RunSweep(sw, cfg, progress)
}

// ReduceConfig re-exports the streaming sweep's per-configuration
// callback: i is the configuration's index in the request, cr its results
// in paper order, err the joined failure of its experiments.
type ReduceConfig = core.ReduceConfig

// RunSweepStream executes a sweep exactly as RunSweep does but hands each
// configuration's section to onConfig the moment its last shard finishes
// and releases the scheduler's buffers for it, so memory is proportional
// to the configurations in flight, not the sweep size. onConfig is
// invoked exactly once per configuration, in completion order, serialized,
// on a scheduler worker goroutine — keep it cheap or hand off. RunSweep is
// a collector over this entry point.
func RunSweepStream(sw Sweep, cfg RunConfig, onConfig ReduceConfig, progress func(Progress)) error {
	return core.RunSweepStream(sw, cfg, onConfig, progress)
}

// CanonicalExperimentIDs resolves a requested experiment-ID set to the
// canonical form run documents carry: paper-order IDs for a proper subset
// of the registry, nil when the request covers the full registry.
func CanonicalExperimentIDs(ids []string) ([]string, error) {
	return core.CanonicalIDs(ids)
}
