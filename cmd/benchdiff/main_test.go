package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line  string
		name  string
		ns    float64
		alloc float64
		ok    bool
	}{
		{"BenchmarkEngineScheduleFire-8   \t100000\t        12.35 ns/op\t       0 B/op\t       0 allocs/op", "BenchmarkEngineScheduleFire", 12.35, 0, true},
		{"BenchmarkMachineRefresh \t5000\t       415.5 ns/op\t     108 B/op\t       1 allocs/op", "BenchmarkMachineRefresh", 415.5, 1, true},
		{"BenchmarkFig6Firestarter-2 \t1\t123456 ns/op\t2.03 GHz/smt", "BenchmarkFig6Firestarter", 123456, 0, true},
		{"PASS", "", 0, 0, false},
		{"ok  \tzen2ee\t0.015s", "", 0, 0, false},
		{"Benchmark text without numbers", "", 0, 0, false},
	}
	for _, c := range cases {
		name, m, ok := parseBenchLine(c.line)
		if ok != c.ok {
			t.Fatalf("parseBenchLine(%q) ok = %v, want %v", c.line, ok, c.ok)
		}
		if !ok {
			continue
		}
		if name != c.name || m.NsPerOp != c.ns || m.AllocsPerOp != c.alloc {
			t.Errorf("parseBenchLine(%q) = (%q, %+v), want (%q, ns=%v allocs=%v)",
				c.line, name, m, c.name, c.ns, c.alloc)
		}
	}
}

func TestRunDiffsTest2JSONStreams(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	new := filepath.Join(dir, "new.json")
	oldData := `{"Action":"output","Output":"BenchmarkEngineScheduleFire-8 \t1000\t50.0 ns/op\t16 B/op\t1 allocs/op\n"}
{"Action":"output","Output":"BenchmarkGone-8 \t10\t99.0 ns/op\n"}
{"Action":"run","Test":"BenchmarkEngineScheduleFire"}
`
	newData := `{"Action":"output","Output":"BenchmarkEngineScheduleFire-4 \t1000\t12.5 ns/op\t0 B/op\t0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkFresh-4 \t1000\t7.0 ns/op\t0 B/op\t0 allocs/op\n"}
`
	if err := os.WriteFile(old, []byte(oldData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(new, []byte(newData), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(old, new, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkEngineScheduleFire", "50.0", "12.5", "-75.0%", "-100.0%",
		"old B/op", "16",
		"BenchmarkFresh", "new",
		"BenchmarkGone", "(removed)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunRendersDashForMissingMemStats: benchmarks recorded without
// -benchmem must show "-" in the B/op and allocs/op columns, not a
// fabricated 0 (which would read as an allocation-free claim).
func TestRunRendersDashForMissingMemStats(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	new := filepath.Join(dir, "new.json")
	if err := os.WriteFile(old, []byte("BenchmarkNoMem-8 \t100\t50.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(new, []byte("BenchmarkNoMem-8 \t100\t40.0 ns/op\nBenchmarkFreshNoMem-8 \t100\t7.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(old, new, &sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// name, old ns, new ns, Δ, then six memory columns — all dashes.
		if len(fields) != 10 {
			t.Fatalf("row has %d columns, want 10: %q", len(fields), line)
		}
		for _, f := range fields[4:] {
			if f != "-" {
				t.Errorf("memory column %q in %q, want \"-\"", f, line)
			}
		}
	}
}

func TestRunRejectsEmptyNew(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, empty, &strings.Builder{}); err == nil {
		t.Fatal("expected error for a new file with no benchmark results")
	}
}
