package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line  string
		name  string
		ns    float64
		alloc float64
		ok    bool
	}{
		{"BenchmarkEngineScheduleFire-8   \t100000\t        12.35 ns/op\t       0 B/op\t       0 allocs/op", "BenchmarkEngineScheduleFire", 12.35, 0, true},
		{"BenchmarkMachineRefresh \t5000\t       415.5 ns/op\t     108 B/op\t       1 allocs/op", "BenchmarkMachineRefresh", 415.5, 1, true},
		{"BenchmarkFig6Firestarter-2 \t1\t123456 ns/op\t2.03 GHz/smt", "BenchmarkFig6Firestarter", 123456, 0, true},
		{"PASS", "", 0, 0, false},
		{"ok  \tzen2ee\t0.015s", "", 0, 0, false},
		{"Benchmark text without numbers", "", 0, 0, false},
	}
	for _, c := range cases {
		name, m, ok := parseBenchLine(c.line)
		if ok != c.ok {
			t.Fatalf("parseBenchLine(%q) ok = %v, want %v", c.line, ok, c.ok)
		}
		if !ok {
			continue
		}
		if name != c.name || m.NsPerOp != c.ns || m.AllocsPerOp != c.alloc {
			t.Errorf("parseBenchLine(%q) = (%q, %+v), want (%q, ns=%v allocs=%v)",
				c.line, name, m, c.name, c.ns, c.alloc)
		}
	}
}

func TestRunDiffsTest2JSONStreams(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	new := filepath.Join(dir, "new.json")
	oldData := `{"Action":"output","Output":"BenchmarkEngineScheduleFire-8 \t1000\t50.0 ns/op\t16 B/op\t1 allocs/op\n"}
{"Action":"output","Output":"BenchmarkGone-8 \t10\t99.0 ns/op\n"}
{"Action":"run","Test":"BenchmarkEngineScheduleFire"}
`
	newData := `{"Action":"output","Output":"BenchmarkEngineScheduleFire-4 \t1000\t12.5 ns/op\t0 B/op\t0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkFresh-4 \t1000\t7.0 ns/op\t0 B/op\t0 allocs/op\n"}
`
	if err := os.WriteFile(old, []byte(oldData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(new, []byte(newData), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(old, new, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkEngineScheduleFire", "50.0", "12.5", "-75.0%", "-100.0%",
		"old B/op", "16",
		"BenchmarkFresh", "new",
		"BenchmarkGone", "(removed)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestParseFileStitchesSplitSubBenchmarkEvents: test2json emits a
// sub-benchmark's result as two output events — the padded name alone,
// then a measurement line that only names the benchmark in its Test
// field. Both halves must land as one parsed result.
func TestParseFileStitchesSplitSubBenchmarkEvents(t *testing.T) {
	stream := `{"Action":"run","Test":"BenchmarkBatched/batch=8"}
{"Action":"output","Test":"BenchmarkBatched/batch=8","Output":"BenchmarkBatched/batch=8\n"}
{"Action":"output","Test":"BenchmarkBatched/batch=8","Output":"BenchmarkBatched/batch=8         \t"}
{"Action":"output","Test":"BenchmarkBatched/batch=8","Output":"     200\t    145884 ns/op\t   21462 B/op\t     255 allocs/op\n"}
{"Action":"output","Test":"BenchmarkWhole","Output":"BenchmarkWhole \t1000\t12.5 ns/op\t0 B/op\t0 allocs/op\n"}
`
	got, err := parseFile(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got["BenchmarkBatched/batch=8"]
	if !ok {
		t.Fatalf("split sub-benchmark missing from %v", got)
	}
	if m.NsPerOp != 145884 || m.AllocsPerOp != 255 || !m.HasMem {
		t.Fatalf("sub-benchmark parsed as %+v", m)
	}
	if _, ok := got["BenchmarkWhole"]; !ok {
		t.Fatalf("single-event benchmark missing from %v", got)
	}
}

// TestRunRendersDashForMissingMemStats: benchmarks recorded without
// -benchmem must show "-" in the B/op and allocs/op columns, not a
// fabricated 0 (which would read as an allocation-free claim).
func TestRunRendersDashForMissingMemStats(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	new := filepath.Join(dir, "new.json")
	if err := os.WriteFile(old, []byte("BenchmarkNoMem-8 \t100\t50.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(new, []byte("BenchmarkNoMem-8 \t100\t40.0 ns/op\nBenchmarkFreshNoMem-8 \t100\t7.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(old, new, &sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// name, old ns, new ns, Δ, then six memory columns — all dashes.
		if len(fields) != 10 {
			t.Fatalf("row has %d columns, want 10: %q", len(fields), line)
		}
		for _, f := range fields[4:] {
			if f != "-" {
				t.Errorf("memory column %q in %q, want \"-\"", f, line)
			}
		}
	}
}

func TestGeomean(t *testing.T) {
	near := func(got, want float64) bool { return got > want*(1-1e-12) && got < want*(1+1e-12) }
	if g, ok := geomean([]float64{2, 8}); !ok || !near(g, 4) {
		t.Fatalf("geomean(2,8) = %v, %v; want ≈4, true", g, ok)
	}
	// Non-positive values are skipped, not folded in as zeros.
	if g, ok := geomean([]float64{0, 9}); !ok || !near(g, 9) {
		t.Fatalf("geomean(0,9) = %v, %v; want ≈9, true", g, ok)
	}
	if _, ok := geomean([]float64{0, 0}); ok {
		t.Fatal("geomean of all-zero values reported ok")
	}
	if _, ok := geomean(nil); ok {
		t.Fatal("geomean of nothing reported ok")
	}
}

// TestRunPrintsGeomeanRow: the summary row pairs benchmarks present in
// both files (geomean of 50,200 = 100 old; 25,100 = 50 new → -50%),
// ignoring the new-only benchmark, and renders "-" for the memory columns
// when no shared benchmark carries -benchmem stats.
func TestRunPrintsGeomeanRow(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	new := filepath.Join(dir, "new.json")
	oldData := "BenchmarkA-8 \t100\t50.0 ns/op\nBenchmarkB-8 \t100\t200.0 ns/op\n"
	newData := "BenchmarkA-8 \t100\t25.0 ns/op\nBenchmarkB-8 \t100\t100.0 ns/op\nBenchmarkOnlyNew-8 \t100\t999.0 ns/op\n"
	if err := os.WriteFile(old, []byte(oldData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(new, []byte(newData), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(old, new, &sb); err != nil {
		t.Fatal(err)
	}
	var row string
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "geomean") {
			row = line
			break
		}
	}
	if row == "" {
		t.Fatalf("output lacks a geomean row:\n%s", sb.String())
	}
	fields := strings.Fields(row)
	want := []string{"geomean", "100.0", "50.0", "-50.0%", "-", "-", "-", "-", "-", "-"}
	if len(fields) != len(want) {
		t.Fatalf("geomean row has %d columns, want %d: %q", len(fields), len(want), row)
	}
	for i, f := range fields {
		if f != want[i] {
			t.Errorf("geomean column %d = %q, want %q (row %q)", i, f, want[i], row)
		}
	}
}

// TestRunOmitsGeomeanWithoutOverlap: files sharing no benchmark have no
// pairs to summarize; fabricating a row would misread as a comparison.
func TestRunOmitsGeomeanWithoutOverlap(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	new := filepath.Join(dir, "new.json")
	if err := os.WriteFile(old, []byte("BenchmarkGone-8 \t100\t50.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(new, []byte("BenchmarkFresh-8 \t100\t40.0 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(old, new, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "geomean") {
		t.Fatalf("geomean row printed with zero shared benchmarks:\n%s", sb.String())
	}
}

func TestRunRejectsEmptyNew(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, empty, &strings.Builder{}); err == nil {
		t.Fatal("expected error for a new file with no benchmark results")
	}
}
