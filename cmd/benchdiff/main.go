// Command benchdiff compares two benchmark result files in `go test -json`
// form (the BENCH_* artifacts CI uploads) and prints an old-vs-new table of
// ns/op, B/op and allocs/op per benchmark, with relative deltas — a
// dependency-free benchstat for the repository's perf-trajectory artifacts.
// Benchmarks recorded without -benchmem show "-" in the memory columns, and
// a trailing `geomean` row summarizes each column over the benchmarks the
// two files share.
//
// Usage:
//
//	benchdiff old.json new.json
//
// Exit status is 0 even when benchmarks regress: the tool makes regressions
// visible in the CI log, it does not gate on them (simulation benchmarks on
// shared runners are too noisy for a hard threshold).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics holds the standard per-benchmark measurements.
type metrics struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	HasMem      bool
}

// testEvent is the subset of the test2json event schema benchdiff consumes.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseFile extracts benchmark results from a test2json stream. Lines that
// are not valid JSON events are tolerated (plain `go test -bench` output can
// be diffed too, one result line per line).
func parseFile(r io.Reader) (map[string]metrics, error) {
	out := make(map[string]metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err == nil && ev.Action == "output" {
			line = strings.TrimSuffix(ev.Output, "\n")
			// test2json splits a sub-benchmark's result across two output
			// events: the padded name alone, then the measurements. The
			// measurement event still names the benchmark in its Test
			// field, so graft it back on when the line lacks one.
			if strings.HasPrefix(ev.Test, "Benchmark") &&
				!strings.HasPrefix(strings.TrimSpace(line), "Benchmark") {
				line = ev.Test + " " + line
			}
		}
		name, m, ok := parseBenchLine(line)
		if ok {
			out[name] = m
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses one benchmark result line:
//
//	BenchmarkName-8   1234   567.8 ns/op   90 B/op   1 allocs/op   2 extra/unit
func parseBenchLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", metrics{}, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", metrics{}, false // not an iteration count
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix so runs from different machines align.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var m metrics
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp = v
		case "B/op":
			m.BytesPerOp = v
			m.HasMem = true
		case "allocs/op":
			m.AllocsPerOp = v
			m.HasMem = true
		}
	}
	return name, m, true
}

// geomean computes the geometric mean of vs, skipping non-positive values
// (their log is undefined; a 0 allocs/op result stays a per-row claim and
// never drags a summary to zero). ok is false when nothing qualified.
func geomean(vs []float64) (g float64, ok bool) {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return math.Exp(sum / float64(n)), true
}

// delta formats the relative change from old to new.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "      ="
		}
		return "    new"
	}
	return fmt.Sprintf("%+6.1f%%", (new-old)/old*100)
}

func run(oldPath, newPath string, w io.Writer) error {
	oldF, err := os.Open(oldPath)
	if err != nil {
		return err
	}
	defer oldF.Close()
	newF, err := os.Open(newPath)
	if err != nil {
		return err
	}
	defer newF.Close()

	olds, err := parseFile(oldF)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", oldPath, err)
	}
	news, err := parseFile(newF)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", newPath, err)
	}
	if len(news) == 0 {
		return fmt.Errorf("no benchmark results in %s", newPath)
	}

	names := make([]string, 0, len(news))
	for name := range news {
		names = append(names, name)
	}
	sort.Strings(names)

	// Benchmarks run without -benchmem carry no memory measurements; their
	// B/op and allocs/op columns render as "-" rather than fabricated zeros
	// (a zero would read as "allocation-free", which is a real claim other
	// benchmarks in these artifacts do make).
	memCols := func(m metrics) (string, string) {
		if !m.HasMem {
			return "-", "-"
		}
		return strconv.FormatFloat(m.BytesPerOp, 'f', 0, 64), strconv.FormatFloat(m.AllocsPerOp, 'f', 0, 64)
	}

	fmt.Fprintf(w, "%-40s %14s %14s %8s %9s %9s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ", "old B/op", "new B/op", "Δ",
		"old allocs", "new allocs", "Δ")
	for _, name := range names {
		n := news[name]
		nB, nA := memCols(n)
		o, ok := olds[name]
		if !ok {
			memNew := "new"
			if !n.HasMem {
				memNew = "-"
			}
			fmt.Fprintf(w, "%-40s %14s %14.1f %8s %9s %9s %8s %10s %10s %8s\n",
				name, "-", n.NsPerOp, "new", "-", nB, memNew, "-", nA, memNew)
			continue
		}
		oB, oA := memCols(o)
		memDelta := func(old, new float64) string {
			if !o.HasMem || !n.HasMem {
				return "-"
			}
			return delta(old, new)
		}
		fmt.Fprintf(w, "%-40s %14.1f %14.1f %8s %9s %9s %8s %10s %10s %8s\n",
			name, o.NsPerOp, n.NsPerOp, delta(o.NsPerOp, n.NsPerOp),
			oB, nB, memDelta(o.BytesPerOp, n.BytesPerOp),
			oA, nA, memDelta(o.AllocsPerOp, n.AllocsPerOp))
	}
	// Summary row: the per-column geometric mean over benchmarks present in
	// both files — one number per column for the CI log to watch instead of
	// eyeballing every row. New-only and removed benchmarks are excluded
	// (there is nothing to pair them with), and the row is omitted entirely
	// when the files share no benchmark.
	var oldNs, newNs, oldB, newB, oldA, newA []float64
	for _, name := range names {
		o, ok := olds[name]
		if !ok {
			continue
		}
		n := news[name]
		oldNs = append(oldNs, o.NsPerOp)
		newNs = append(newNs, n.NsPerOp)
		if o.HasMem && n.HasMem {
			oldB = append(oldB, o.BytesPerOp)
			newB = append(newB, n.BytesPerOp)
			oldA = append(oldA, o.AllocsPerOp)
			newA = append(newA, n.AllocsPerOp)
		}
	}
	geomeanCols := func(old, new []float64) (string, string, string) {
		og, okOld := geomean(old)
		ng, okNew := geomean(new)
		if !okOld || !okNew {
			return "-", "-", "-"
		}
		return strconv.FormatFloat(og, 'f', 1, 64), strconv.FormatFloat(ng, 'f', 1, 64), delta(og, ng)
	}
	if len(oldNs) > 0 {
		oNs, nNs, dNs := geomeanCols(oldNs, newNs)
		oBs, nBs, dB := geomeanCols(oldB, newB)
		oAs, nAs, dA := geomeanCols(oldA, newA)
		fmt.Fprintf(w, "%-40s %14s %14s %8s %9s %9s %8s %10s %10s %8s\n",
			"geomean", oNs, nNs, dNs, oBs, nBs, dB, oAs, nAs, dA)
	}
	for name := range olds {
		if _, ok := news[name]; !ok {
			fmt.Fprintf(w, "%-40s (removed)\n", name)
		}
	}
	return nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff old.json new.json")
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Args[2], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
