// Command firestarter is a FIRESTARTER-2-style stress demo against the
// simulated system: it loads every core with the dense 256-bit FMA kernel
// and reports how the EDC manager throttles frequency, what the external
// meter reads and what RAPL claims (Fig. 6 / §V-E of the paper).
//
// Usage: firestarter [-duration SECONDS] [-no-smt] [-no-edc]
package main

import (
	"flag"
	"fmt"
	"os"

	"zen2ee"
)

func main() {
	duration := flag.Float64("duration", 2, "simulated run time in seconds")
	noSMT := flag.Bool("no-smt", false, "load only one hardware thread per core")
	noEDC := flag.Bool("no-edc", false, "ablate the EDC manager")
	flag.Parse()

	var opts []zen2ee.Option
	if *noEDC {
		opts = append(opts, zen2ee.WithoutEDCManager())
	}
	sys := zen2ee.NewSystem(opts...)
	if err := sys.SetAllFrequenciesMHz(2500); err != nil {
		fatal(err)
	}

	loaded := 0
	for cpu := 0; cpu < sys.NumCPUs(); cpu++ {
		if *noSMT && cpu >= sys.NumCores() {
			break
		}
		if err := sys.Run(cpu, "firestarter"); err != nil {
			fatal(err)
		}
		loaded++
	}
	fmt.Printf("FIRESTARTER on %d hardware threads (%d cores), nominal 2.5 GHz\n\n", loaded, sys.NumCores())

	// Converge and warm up.
	sys.AdvanceMillis(300)
	sys.Preheat()

	fmt.Printf("%8s  %10s  %8s  %10s  %10s\n", "t [s]", "freq [GHz]", "IPC", "AC [W]", "RAPL0 [W]")
	steps := int(*duration / 0.2)
	if steps < 1 {
		steps = 1
	}
	for i := 0; i < steps; i++ {
		st := sys.Stat(0, 100) // advances 100 ms
		rapl := sys.RAPLPackageWatts(0, 100)
		fmt.Printf("%8.1f  %10.3f  %8.2f  %10.1f  %10.1f\n",
			sys.NowSeconds(), st.GHz, st.IPC, sys.PowerWatts(), rapl)
	}

	fmt.Println()
	fmt.Printf("final: %.3f GHz effective (EDC %s), %.0f W AC, package temperature %.1f °C\n",
		sys.CoreGHz(0), onOff(!*noEDC), sys.PowerWatts(), sys.TempC())
	if !*noEDC {
		fmt.Println("the EDC manager throttles dense 256-bit FMA below nominal — monitor")
		fmt.Println("frequencies on Rome systems: the actual ranges are undocumented.")
	}
}

func onOff(b bool) string {
	if b {
		return "active"
	}
	return "ablated"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "firestarter:", err)
	os.Exit(1)
}
