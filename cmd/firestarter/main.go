// Command firestarter is a FIRESTARTER-2-style stress demo against the
// simulated system: it loads every core with the dense 256-bit FMA kernel
// and reports how the EDC manager throttles frequency, what the external
// meter reads and what RAPL claims (Fig. 6 / §V-E of the paper).
//
// Usage: firestarter [-duration SECONDS] [-no-smt] [-no-edc]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"zen2ee"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0) // -h is a successful help request, not a usage error
		}
		fmt.Fprintln(os.Stderr, "firestarter:", err)
		os.Exit(1)
	}
}

// run is the stress-demo body, separated from main so the smoke test can
// drive a short run against buffers.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("firestarter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	duration := fs.Float64("duration", 2, "simulated run time in seconds")
	noSMT := fs.Bool("no-smt", false, "load only one hardware thread per core")
	noEDC := fs.Bool("no-edc", false, "ablate the EDC manager")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opts []zen2ee.Option
	if *noEDC {
		opts = append(opts, zen2ee.WithoutEDCManager())
	}
	sys := zen2ee.NewSystem(opts...)
	if err := sys.SetAllFrequenciesMHz(2500); err != nil {
		return err
	}

	loaded := 0
	for cpu := 0; cpu < sys.NumCPUs(); cpu++ {
		if *noSMT && cpu >= sys.NumCores() {
			break
		}
		if err := sys.Run(cpu, "firestarter"); err != nil {
			return err
		}
		loaded++
	}
	fmt.Fprintf(stdout, "FIRESTARTER on %d hardware threads (%d cores), nominal 2.5 GHz\n\n", loaded, sys.NumCores())

	// Converge and warm up.
	sys.AdvanceMillis(300)
	sys.Preheat()

	fmt.Fprintf(stdout, "%8s  %10s  %8s  %10s  %10s\n", "t [s]", "freq [GHz]", "IPC", "AC [W]", "RAPL0 [W]")
	steps := int(*duration / 0.2)
	if steps < 1 {
		steps = 1
	}
	for i := 0; i < steps; i++ {
		st := sys.Stat(0, 100) // advances 100 ms
		rapl := sys.RAPLPackageWatts(0, 100)
		fmt.Fprintf(stdout, "%8.1f  %10.3f  %8.2f  %10.1f  %10.1f\n",
			sys.NowSeconds(), st.GHz, st.IPC, sys.PowerWatts(), rapl)
	}

	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "final: %.3f GHz effective (EDC %s), %.0f W AC, package temperature %.1f °C\n",
		sys.CoreGHz(0), onOff(!*noEDC), sys.PowerWatts(), sys.TempC())
	if !*noEDC {
		fmt.Fprintln(stdout, "the EDC manager throttles dense 256-bit FMA below nominal — monitor")
		fmt.Fprintln(stdout, "frequencies on Rome systems: the actual ranges are undocumented.")
	}
	return nil
}

func onOff(b bool) string {
	if b {
		return "active"
	}
	return "ablated"
}
