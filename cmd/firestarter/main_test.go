package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestRunShortSession smoke-tests the stress demo's main path: a short run
// must converge under the EDC manager (below nominal 2.5 GHz) and print the
// final summary.
func TestRunShortSession(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-duration", "0.2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"FIRESTARTER on 128 hardware threads (64 cores)",
		"RAPL0 [W]",
		"EDC active",
		"the EDC manager throttles dense 256-bit FMA below nominal",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunNoSMTLoadsOneThreadPerCore(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-duration", "0.2", "-no-smt"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FIRESTARTER on 64 hardware threads (64 cores)") {
		t.Fatalf("-no-smt did not halve the loaded threads:\n%s", out.String())
	}
}

func TestRunNoEDC(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-duration", "0.2", "-no-edc"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "EDC ablated") {
		t.Fatalf("-no-edc not reflected in the summary:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}
