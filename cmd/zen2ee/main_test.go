package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zen2ee/internal/core"
	"zen2ee/internal/obs"
	"zen2ee/internal/report"
)

func TestParseExperimentArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want experimentFlags
	}{
		{"flags before positional", []string{"-scale", "2", "all"},
			experimentFlags{opts: opts(2, 1), pos: []string{"all"}}},
		{"flags after positional", []string{"all", "-scale=2"},
			experimentFlags{opts: opts(2, 1), pos: []string{"all"}}},
		{"equals and space forms mixed", []string{"-seed=9", "fig3", "-scale", "0.5"},
			experimentFlags{opts: opts(0.5, 9), pos: []string{"fig3"}}},
		{"boolean csv", []string{"all", "-csv"},
			experimentFlags{opts: opts(1, 1), csv: true, pos: []string{"all"}}},
		{"csv with explicit value", []string{"-csv=false", "all"},
			experimentFlags{opts: opts(1, 1), pos: []string{"all"}}},
		{"boolean json", []string{"all", "-json"},
			experimentFlags{opts: opts(1, 1), jsonOut: true, pos: []string{"all"}}},
		{"json with explicit value", []string{"-json=false", "all"},
			experimentFlags{opts: opts(1, 1), pos: []string{"all"}}},
		{"parallel", []string{"run-free", "-parallel", "4"},
			experimentFlags{opts: opts(1, 1), parallel: 4, pos: []string{"run-free"}}},
		{"double dash flags", []string{"--scale", "3", "all"},
			experimentFlags{opts: opts(3, 1), pos: []string{"all"}}},
		{"end-of-flags marker", []string{"-scale", "2", "--", "-weird-id"},
			experimentFlags{opts: opts(2, 1), pos: []string{"-weird-id"}}},
		{"sweep axes", []string{"-scales", "1,2,4", "-seeds", "1..3", "fig7"},
			experimentFlags{opts: opts(1, 1), scales: []float64{1, 2, 4}, seeds: []uint64{1, 2, 3}, pos: []string{"fig7"}}},
		{"seed list with ranges", []string{"-seeds=2,5..7,10"},
			experimentFlags{opts: opts(1, 1), seeds: []uint64{2, 5, 6, 7, 10}}},
		{"profiling flags", []string{"fig7", "-cpuprofile", "cpu.out", "-memprofile=mem.out"},
			experimentFlags{opts: opts(1, 1), cpuprofile: "cpu.out", memprofile: "mem.out", pos: []string{"fig7"}}},
		{"output file", []string{"-o", "out.json", "-json", "fig1"},
			experimentFlags{opts: opts(1, 1), jsonOut: true, output: "out.json", pos: []string{"fig1"}}},
		{"trace file", []string{"fig1", "-trace", "trace.json"},
			experimentFlags{opts: opts(1, 1), trace: "trace.json", pos: []string{"fig1"}}},
	}
	for _, c := range cases {
		got, err := parseExperimentArgs(c.args)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}

func opts(scale float64, seed uint64) core.Options {
	return core.Options{Scale: scale, Seed: seed}
}

func TestParseExperimentArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus", "all"},                     // unknown flag must not become positional
		{"all", "-scale"},                     // missing value
		{"-scale", "two", "all"},              // non-numeric value
		{"-scale", "0", "all"},                // scale must be positive (Options.Validate)
		{"-scale", "-2", "all"},               // negative scale
		{"-scale", "Inf", "all"},              // non-finite scale
		{"-scale", "NaN", "all"},              // non-finite scale
		{"-parallel", "0", "all"},             // workers below 1
		{"-parallel", "-1", "all"},            // negative workers
		{"-csv=maybe", "all"},                 // bad boolean
		{"-json=maybe", "all"},                // bad boolean
		{"-scales", "1,zero"},                 // non-numeric scale in axis
		{"-scales", "1,-2"},                   // negative scale in axis
		{"-seeds", "8..1"},                    // descending range
		{"-seeds", "1..1000000"},              // range beyond the sanity bound
		{"-seeds", "0..18446744073709551615"}, // full uint64 range must not overflow the guard
		{"-seeds", "1..two"},                  // malformed range end
	} {
		if _, err := parseExperimentArgs(args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestSweepCommandGuards(t *testing.T) {
	// Single-run flags on sweep, sweep axes on run/gen-experiments, and
	// csv on sweep are all loud errors, not silent reinterpretations.
	for name, call := range map[string]func() error{
		"sweep -scale":           func() error { return sweep([]string{"-scale", "2", "fig1"}) },
		"sweep -csv":             func() error { return sweep([]string{"-csv", "fig1"}) },
		"run -scales":            func() error { return run([]string{"-scales", "1,2", "fig1"}) },
		"run -o":                 func() error { return run([]string{"-o", "out.json", "fig1"}) },
		"gen-experiments -seeds": func() error { return genExperiments([]string{"-seeds", "1..2"}) },
		"gen-experiments -o":     func() error { return genExperiments([]string{"-o", "out.json"}) },
		"gen-experiments -trace": func() error { return genExperiments([]string{"-trace", "t.json"}) },
		"sweep duplicate ids":    func() error { return sweep([]string{"fig1", "fig1"}) },
	} {
		if err := call(); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

// TestSweepOutputFileAtomic: `sweep -json -o F` writes the exact collected
// sweep document through a temp file renamed into place, and a failing
// sweep leaves the previous file untouched with no temp debris.
func TestSweepOutputFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.json")
	if err := sweep([]string{"fig1", "-scales", "0.2", "-seeds", "1,2", "-json", "-o", path}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.RunSweep(core.Sweep{
		IDs: []string{"fig1"}, Configs: core.Grid([]float64{0.2}, []uint64{1, 2}),
	}, core.RunConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := report.MarshalSweep(sr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("streamed -o document differs from the collected MarshalSweep bytes")
	}

	// A failing sweep must leave the existing document alone and clean up
	// its temp file.
	if err := sweep([]string{"nonexistent", "-json", "-o", path}); err == nil {
		t.Fatal("sweep of an unknown id succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, got) {
		t.Error("failed sweep modified the previous output file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "sweep.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("output directory holds %v, want only sweep.json (no temp debris)", names)
	}
}

// TestSweepTraceFile: `sweep -trace F` commits a Chrome trace-event
// document that round-trips through the decoder, holds exactly one shard
// task per (config, experiment, shard), and attributes shard work to
// worker threads inside the configured pool.
func TestSweepTraceFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sweep.json")
	tracePath := filepath.Join(dir, "trace.json")
	const workers = 2
	err := sweep([]string{"fig1", "-scales", "0.2", "-seeds", "1,2",
		"-parallel", "2", "-json", "-o", out, "-trace", tracePath})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := report.UnmarshalTrace(raw)
	if err != nil {
		t.Fatalf("trace file does not round-trip through the decoder: %v", err)
	}

	shardTasks := map[string]int{}
	configs := map[float64]bool{}
	for _, e := range doc.CompleteEvents() {
		if e.TS < 0 || e.Dur < 0 {
			t.Fatalf("event %q has negative timing: ts=%v dur=%v", e.Name, e.TS, e.Dur)
		}
		if e.Cat != obs.CatShard {
			continue
		}
		if e.TID < 1 || e.TID > workers {
			t.Errorf("shard event %q on tid %d, want a worker thread in [1,%d]", e.Name, e.TID, workers)
		}
		cfg, ok := e.Args["config"].(float64)
		if !ok {
			t.Fatalf("shard event %q has no numeric config arg: %v", e.Name, e.Args)
		}
		configs[cfg] = true
		shardTasks[fmt.Sprintf("%v/%s", cfg, e.Name)]++
	}
	if len(configs) != 2 {
		t.Errorf("shard events span %d configs, want 2 (one per seed)", len(configs))
	}
	for key, n := range shardTasks {
		if n != 1 {
			t.Errorf("shard task %s recorded %d times, want exactly once", key, n)
		}
	}
	if len(shardTasks) == 0 {
		t.Fatal("trace holds no shard tasks")
	}
}
