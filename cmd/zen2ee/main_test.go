package main

import (
	"reflect"
	"testing"

	"zen2ee/internal/core"
)

func TestParseExperimentArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want experimentFlags
	}{
		{"flags before positional", []string{"-scale", "2", "all"},
			experimentFlags{opts: opts(2, 1), pos: []string{"all"}}},
		{"flags after positional", []string{"all", "-scale=2"},
			experimentFlags{opts: opts(2, 1), pos: []string{"all"}}},
		{"equals and space forms mixed", []string{"-seed=9", "fig3", "-scale", "0.5"},
			experimentFlags{opts: opts(0.5, 9), pos: []string{"fig3"}}},
		{"boolean csv", []string{"all", "-csv"},
			experimentFlags{opts: opts(1, 1), csv: true, pos: []string{"all"}}},
		{"csv with explicit value", []string{"-csv=false", "all"},
			experimentFlags{opts: opts(1, 1), pos: []string{"all"}}},
		{"boolean json", []string{"all", "-json"},
			experimentFlags{opts: opts(1, 1), jsonOut: true, pos: []string{"all"}}},
		{"json with explicit value", []string{"-json=false", "all"},
			experimentFlags{opts: opts(1, 1), pos: []string{"all"}}},
		{"parallel", []string{"run-free", "-parallel", "4"},
			experimentFlags{opts: opts(1, 1), parallel: 4, pos: []string{"run-free"}}},
		{"double dash flags", []string{"--scale", "3", "all"},
			experimentFlags{opts: opts(3, 1), pos: []string{"all"}}},
		{"end-of-flags marker", []string{"-scale", "2", "--", "-weird-id"},
			experimentFlags{opts: opts(2, 1), pos: []string{"-weird-id"}}},
	}
	for _, c := range cases {
		got, err := parseExperimentArgs(c.args)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}

func opts(scale float64, seed uint64) core.Options {
	return core.Options{Scale: scale, Seed: seed}
}

func TestParseExperimentArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus", "all"},          // unknown flag must not become positional
		{"all", "-scale"},          // missing value
		{"-scale", "two", "all"},   // non-numeric value
		{"-scale", "0", "all"},     // scale must be positive (Options.Validate)
		{"-scale", "-2", "all"},    // negative scale
		{"-scale", "Inf", "all"},   // non-finite scale
		{"-scale", "NaN", "all"},   // non-finite scale
		{"-parallel", "0", "all"},  // workers below 1
		{"-parallel", "-1", "all"}, // negative workers
		{"-csv=maybe", "all"},      // bad boolean
		{"-json=maybe", "all"},     // bad boolean
	} {
		if _, err := parseExperimentArgs(args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
