// Command zen2ee runs the paper's experiments against the simulated
// dual-EPYC-7502 system and prints the regenerated tables and figures.
//
// Usage:
//
//	zen2ee list                          # list all experiments
//	zen2ee run <id>|all [-scale S] [-seed N] [-csv]
//	zen2ee gen-experiments [-scale S]    # emit EXPERIMENTS.md to stdout
//
// Scale 1 gives quick, statistically meaningful runs; the paper's full
// protocol corresponds to roughly -scale 25.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zen2ee/internal/core"
	"zen2ee/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = list()
	case "run":
		err = run(args)
	case "gen-experiments":
		err = genExperiments(args)
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zen2ee:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  zen2ee list
  zen2ee run <id>|all [-scale S] [-seed N] [-csv]
  zen2ee gen-experiments [-scale S] [-seed N]`)
}

func list() error {
	fmt.Printf("%-10s %-12s %-24s %s\n", "ID", "PAPER REF", "BENCH", "TITLE")
	for _, e := range core.Registry() {
		fmt.Printf("%-10s %-12s %-24s %s\n", e.ID, e.PaperRef, e.Bench, e.Title)
	}
	return nil
}

func experimentFlags(args []string) (core.Options, bool, []string, error) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	scale := fs.Float64("scale", 1, "effort scale (paper-full ≈ 25)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	csv := fs.Bool("csv", false, "emit rows as CSV")
	// Allow flags after the positional argument.
	var pos []string
	var flagArgs []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") || len(flagArgs) > 0 && needsValue(flagArgs[len(flagArgs)-1]) {
			flagArgs = append(flagArgs, a)
		} else {
			pos = append(pos, a)
		}
	}
	if err := fs.Parse(flagArgs); err != nil {
		return core.Options{}, false, nil, err
	}
	return core.Options{Scale: *scale, Seed: *seed}, *csv, pos, nil
}

func needsValue(flagTok string) bool {
	switch strings.TrimLeft(flagTok, "-") {
	case "scale", "seed":
		return !strings.Contains(flagTok, "=")
	}
	return false
}

func run(args []string) error {
	opts, csv, pos, err := experimentFlags(args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("run needs exactly one experiment id (or 'all')")
	}
	var results []*core.Result
	if pos[0] == "all" {
		results, err = core.RunAll(opts)
		if err != nil {
			return err
		}
	} else {
		e, err := core.ByID(pos[0])
		if err != nil {
			return err
		}
		r, err := e.Run(opts)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	for _, r := range results {
		if csv {
			if err := report.WriteCSV(os.Stdout, r); err != nil {
				return err
			}
		} else {
			fmt.Println(r.Table())
		}
	}
	return nil
}

func genExperiments(args []string) error {
	opts, _, _, err := experimentFlags(args)
	if err != nil {
		return err
	}
	results, err := core.RunAll(opts)
	if err != nil {
		return err
	}
	_, err = report.WriteMarkdown(os.Stdout, results, opts)
	return err
}
