// Command zen2ee runs the paper's experiments against the simulated
// dual-EPYC-7502 system and prints the regenerated tables and figures.
//
// Usage:
//
//	zen2ee list                          # list all experiments
//	zen2ee run <id>|all [-scale S] [-seed N] [-parallel N] [-csv|-json] [-trace F] [-shard-cache DIR] [-listen-workers ADDR [-min-workers N] [-lease-batch K]]
//	zen2ee sweep [<id>...|all] [-scales S1,S2] [-seeds N1..N2] [-parallel N] [-json] [-o F] [-trace F] [-shard-cache DIR] [-listen-workers ADDR [-min-workers N] [-lease-batch K]]
//	zen2ee gen-experiments [-scale S] [-seed N] [-parallel N]
//
// Scale 1 gives quick, statistically meaningful runs; the paper's full
// protocol corresponds to roughly -scale 25. Full-suite runs are fanned
// out across -parallel worker goroutines (default: all CPUs); results are
// bit-identical to a serial run for the same seed, and per-experiment
// progress streams to stderr.
//
// sweep evaluates one experiment set over the -scales × -seeds grid as a
// single batched run: every (configuration, experiment, shard) triple
// shares one worker pool, and each configuration's section of the output
// is byte-identical to the standalone `zen2ee run` of that configuration.
// Output streams section by section as configurations complete, so memory
// is bounded by the in-flight window, not the grid; -o writes the document
// through a temp file renamed into place only on success.
//
// With -shard-cache DIR individual shard outputs are memoized
// content-addressed under DIR. Re-running any spec over a warm cache skips
// execution at shard granularity with byte-identical output, and a killed
// sweep resumes from its last completed shard on the next invocation.
package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"zen2ee/internal/core"
	"zen2ee/internal/dist"
	"zen2ee/internal/obs"
	"zen2ee/internal/report"
	"zen2ee/internal/shardcache"
	"zen2ee/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = list()
	case "run":
		err = run(args)
	case "sweep":
		err = sweep(args)
	case "gen-experiments":
		err = genExperiments(args)
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zen2ee:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  zen2ee list
  zen2ee run <id>|all [-scale S] [-seed N] [-parallel N] [-csv|-json] [-trace F]
  zen2ee sweep [<id>...|all] [-scales S1,S2] [-seeds N1..N2] [-parallel N] [-json] [-o F] [-trace F]
  zen2ee gen-experiments [-scale S] [-seed N] [-parallel N]

flags (accepted before or after the positional argument):
  -scale S     effort scale; the paper's full protocol is ≈ 25 (default 1)
  -seed N      simulation seed (default 1)
  -scales CSV  sweep scale axis, e.g. -scales 1,2,4 (sweep only; default 1)
  -seeds LIST  sweep seed axis: CSV and/or ranges, e.g. -seeds 1..8 or
               -seeds 1,5,10..12 (sweep only; default 1)
  -parallel N  worker goroutines for full-suite runs (default: all CPUs;
               results are identical for every N)
  -csv         emit rows as CSV instead of aligned tables
  -json        emit the canonical JSON document (identical bytes to what
               the zen2eed daemon serves for the same spec)
  -o F         sweep only: write the output to F via a temp file renamed
               into place on success, so an interrupted run never leaves
               a truncated document behind
  -trace F     write a Chrome trace-event JSON of the run's execution to F
               (one span per scheduled shard task plus scheduler lifecycle
               spans); open it at https://ui.perfetto.dev or
               chrome://tracing. Tracing does not change the results
  -cpuprofile F  write a CPU profile of the command to F (like go test's
               flag); inspect with 'go tool pprof F'
  -memprofile F  write a post-GC heap profile of the command to F
  -listen-workers ADDR  run/sweep only: serve the distributed worker
               protocol on ADDR and fan shards out to remote 'zen2eed
               -worker http://HOST:PORT' processes; local execution stays
               the fallback and results are byte-identical to a local run
  -min-workers N  wait until N workers have registered before starting
               (only with -listen-workers)
  -lease-batch K  run/sweep only: let one worker long-poll return up to K
               shard leases at once (only with -listen-workers; 0 uses
               the coordinator default of 16)
  -shard-cache DIR  run/sweep only: memoize per-shard outputs content-
               addressed under DIR; shards whose key is already cached
               are served without executing, with byte-identical output.
               Keys cover experiment, scale, seed, shard index, and the
               experiment-registry version, so a registry change
               invalidates the whole cache

sweep runs the scales × seeds cross-product of configurations as one
batched job; each configuration's output section is byte-identical to the
standalone run of that configuration.`)
}

func list() error {
	fmt.Printf("%-10s %-12s %-24s %s\n", "ID", "PAPER REF", "BENCH", "TITLE")
	for _, e := range core.Registry() {
		fmt.Printf("%-10s %-12s %-24s %s\n", e.ID, e.PaperRef, e.Bench, e.Title)
	}
	return nil
}

// experimentFlags holds the parsed flags shared by run, sweep, and
// gen-experiments.
type experimentFlags struct {
	opts       core.Options
	scales     []float64 // sweep scale axis (-scales)
	seeds      []uint64  // sweep seed axis (-seeds)
	csv        bool
	jsonOut    bool
	output     string // sweep destination file (-o); empty means stdout
	trace      string // execution-trace destination file (-trace)
	parallel   int    // worker count; 0 means runtime.NumCPU()
	cpuprofile string
	memprofile string
	// listenWorkers starts a shard coordinator on this address so remote
	// `zen2eed -worker` processes can execute the run's shards;
	// minWorkers delays the run until that many have registered.
	listenWorkers string
	minWorkers    int
	// shardCacheDir memoizes per-shard outputs in a content-addressed
	// store rooted at this directory; a warm cache skips execution at
	// shard granularity with byte-identical output (-shard-cache).
	shardCacheDir string
	// leaseBatch caps how many shard leases one worker long-poll may
	// return (-lease-batch; 0 means the coordinator default).
	leaseBatch int
	pos        []string
}

// parseExperimentArgs scans args in a single pass, accepting flags before
// and after positional arguments and all three spellings uniformly:
// `-flag value`, `-flag=value`, and the boolean `-csv`. Unknown flags are a
// usage error rather than silently becoming positional arguments.
func parseExperimentArgs(args []string) (experimentFlags, error) {
	f := experimentFlags{opts: core.DefaultOptions()}
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			// Conventional end-of-flags marker: the rest is positional.
			f.pos = append(f.pos, args[i+1:]...)
			break
		}
		if !strings.HasPrefix(a, "-") || a == "-" {
			f.pos = append(f.pos, a)
			continue
		}
		name := strings.TrimLeft(a, "-")
		val, hasVal := "", false
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name, val, hasVal = name[:eq], name[eq+1:], true
		}
		takeValue := func() (string, error) {
			if hasVal {
				return val, nil
			}
			if i+1 >= len(args) {
				return "", fmt.Errorf("needs a value")
			}
			i++
			return args[i], nil
		}
		var err error
		switch name {
		case "scale":
			var v string
			if v, err = takeValue(); err == nil {
				if f.opts.Scale, err = strconv.ParseFloat(v, 64); err == nil {
					err = f.opts.Validate()
				}
			}
		case "seed":
			var v string
			if v, err = takeValue(); err == nil {
				f.opts.Seed, err = strconv.ParseUint(v, 10, 64)
			}
		case "scales":
			var v string
			if v, err = takeValue(); err == nil {
				f.scales, err = parseScaleList(v)
			}
		case "seeds":
			var v string
			if v, err = takeValue(); err == nil {
				f.seeds, err = parseSeedList(v)
			}
		case "parallel":
			var v string
			if v, err = takeValue(); err == nil {
				f.parallel, err = strconv.Atoi(v)
				if err == nil && f.parallel < 1 {
					err = fmt.Errorf("must be >= 1")
				}
			}
		case "o":
			f.output, err = takeValue()
		case "trace":
			f.trace, err = takeValue()
		case "cpuprofile":
			f.cpuprofile, err = takeValue()
		case "memprofile":
			f.memprofile, err = takeValue()
		case "listen-workers":
			f.listenWorkers, err = takeValue()
		case "shard-cache":
			f.shardCacheDir, err = takeValue()
		case "lease-batch":
			var v string
			if v, err = takeValue(); err == nil {
				f.leaseBatch, err = strconv.Atoi(v)
				if err == nil && f.leaseBatch < 0 {
					err = fmt.Errorf("must be >= 0 (0 means the default)")
				}
			}
		case "min-workers":
			var v string
			if v, err = takeValue(); err == nil {
				f.minWorkers, err = strconv.Atoi(v)
				if err == nil && f.minWorkers < 1 {
					err = fmt.Errorf("must be >= 1")
				}
			}
		case "csv":
			f.csv = true
			if hasVal {
				f.csv, err = strconv.ParseBool(val)
			}
		case "json":
			f.jsonOut = true
			if hasVal {
				f.jsonOut, err = strconv.ParseBool(val)
			}
		default:
			return f, fmt.Errorf("unknown flag -%s (see 'zen2ee help')", name)
		}
		if err != nil {
			return f, fmt.Errorf("flag -%s: %v", name, err)
		}
	}
	return f, nil
}

// parseScaleList parses a CSV of positive scales ("1,2,4").
func parseScaleList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q", part)
		}
		if err := (core.Options{Scale: v, Seed: 1}).Validate(); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// maxSeedRange bounds a single -seeds range so a typo ("1..1e9") cannot
// silently request a billion configurations.
const maxSeedRange = 4096

// parseSeedList parses a seed axis: comma-separated entries that are
// either single seeds ("5") or inclusive ranges ("1..8").
func parseSeedList(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi, isRange := part, part, false
		if i := strings.Index(part, ".."); i >= 0 {
			lo, hi, isRange = part[:i], part[i+2:], true
		}
		a, err := strconv.ParseUint(lo, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		b := a
		if isRange {
			if b, err = strconv.ParseUint(hi, 10, 64); err != nil {
				return nil, fmt.Errorf("bad seed range %q", part)
			}
			if b < a {
				return nil, fmt.Errorf("seed range %q is descending", part)
			}
			// b-a (not b-a+1) so the full-uint64 range cannot overflow the
			// size computation past the guard.
			if b-a >= maxSeedRange {
				return nil, fmt.Errorf("seed range %q spans more than %d seeds", part, maxSeedRange)
			}
		}
		for v := a; ; v++ {
			out = append(out, v)
			if v == b {
				break
			}
		}
	}
	return out, nil
}

// printProgress streams scheduler events to stderr so stdout stays
// parseable: indented shard lines as a heavy experiment's sweep points
// complete, and one completion line per experiment. Sweep runs prefix
// each line with the configuration it belongs to.
func printProgress(p core.Progress) {
	status := "ok"
	if p.Err != nil {
		status = "FAILED: " + p.Err.Error()
	}
	cfg := ""
	if p.Configs > 1 {
		cfg = fmt.Sprintf("c%d ", p.Config+1)
	}
	if !p.ExperimentDone() {
		fmt.Fprintf(os.Stderr, "        %s%-10s shard %2d/%-2d %-20s %-8s %s\n",
			cfg, p.ID, p.Shard, p.Shards, p.Label, p.Elapsed.Round(100*time.Microsecond), status)
		return
	}
	fmt.Fprintf(os.Stderr, "[%2d/%d] %s%-10s %-8s %s\n",
		p.Done, p.Total, cfg, p.ID, p.Elapsed.Round(100*time.Microsecond), status)
}

// withProfiles brackets a command with pprof collection, mirroring `go
// test`'s -cpuprofile/-memprofile: the CPU profile covers the command body,
// and the heap profile is written after a final GC so it reflects live
// allocations, not collectable garbage.
func (f experimentFlags) withProfiles(body func() error) error {
	if f.cpuprofile != "" {
		g, err := os.Create(f.cpuprofile)
		if err != nil {
			return err
		}
		defer g.Close()
		if err := pprof.StartCPUProfile(g); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	err := body()
	if f.memprofile != "" {
		g, merr := os.Create(f.memprofile)
		if merr != nil {
			return errors.Join(err, merr)
		}
		defer g.Close()
		runtime.GC()
		if merr := pprof.WriteHeapProfile(g); merr != nil {
			return errors.Join(err, merr)
		}
	}
	return err
}

// runSuite fans the full suite out across the requested workers.
func runSuite(f experimentFlags) ([]*core.Result, error) {
	return core.RunAllParallelProgress(f.opts, f.parallel, printProgress)
}

// withCoordinator wires distributed execution into a run when
// -listen-workers is set: it serves the worker protocol on the given
// address, optionally waits for -min-workers registrations, and rewires
// the scheduler to dispatch shards through the coordinator's lease queue
// (local execution remains the fallback, so a run with zero workers still
// completes). The returned cleanup tears the listener and coordinator
// down; it must run after the scheduler returns.
func (f experimentFlags) withCoordinator(runCfg *core.RunConfig, tr *obs.Trace) (cleanup func(), err error) {
	if f.listenWorkers == "" {
		if f.minWorkers > 0 {
			return nil, fmt.Errorf("-min-workers needs -listen-workers")
		}
		if f.leaseBatch > 0 {
			return nil, fmt.Errorf("-lease-batch needs -listen-workers")
		}
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", f.listenWorkers)
	if err != nil {
		return nil, fmt.Errorf("-listen-workers: %w", err)
	}
	coord := dist.NewCoordinator(dist.Config{MaxLeaseBatch: f.leaseBatch})
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "zen2ee: coordinator listening on %s (join with: zen2eed -worker http://%s)\n", addr, addr)
	if f.minWorkers > 0 {
		fmt.Fprintf(os.Stderr, "zen2ee: waiting for %d worker(s) to register...\n", f.minWorkers)
		for coord.WorkersConnected() < f.minWorkers {
			time.Sleep(25 * time.Millisecond)
		}
	}
	h := coord.StartRun(tr)
	runCfg.RunShard = h.RunShard
	// Size the dispatch width to the whole pool — local slots plus every
	// registered worker's — so a fleet larger than this machine's CPU
	// count is actually kept busy. Placement does not affect results.
	local := f.parallel
	if local == 0 {
		local = runtime.NumCPU()
	}
	runCfg.Workers = coord.PoolSize(local)
	return func() {
		h.Finish()
		srv.Close()
		coord.Close()
	}, nil
}

// shardCacheMemEntries/Bytes bound the in-process tier fronting the
// -shard-cache directory; the disk tier underneath is unbounded, so these
// only trade memory for re-reads on very large sweeps.
const (
	shardCacheMemEntries = 512
	shardCacheMemBytes   = 128 << 20
)

// withShardCache wires shard-output memoization into a run when
// -shard-cache is set: shard outputs are stored content-addressed under
// the given directory (fronted by a small memory tier), and any shard
// whose key is already present is served from the cache instead of
// executed — byte-identical, per the engine's determinism guarantee. It
// must wrap runCfg.RunShard after withCoordinator so cached shards skip
// the lease queue entirely. The returned cleanup closes the store and
// reports hit/miss counts; it must run after the scheduler returns.
func (f experimentFlags) withShardCache(runCfg *core.RunConfig, tr *obs.Trace) (cleanup func(), err error) {
	if f.shardCacheDir == "" {
		return func() {}, nil
	}
	disk, err := store.NewDisk(f.shardCacheDir, 0)
	if err != nil {
		return nil, fmt.Errorf("-shard-cache: %w", err)
	}
	st := store.NewTiered(store.NewMemory(shardCacheMemEntries, shardCacheMemBytes), disk)
	cache := shardcache.New(st, "")
	runCfg.RunShard = cache.WrapRunShard(runCfg.RunShard, tr)
	return func() {
		s := cache.Stats()
		fmt.Fprintf(os.Stderr, "zen2ee: shard cache: %d hit(s), %d miss(es), %d byte(s) served\n",
			s.Hits, s.Misses, s.BytesServed)
		st.Close()
	}, nil
}

// rejectSweepAxes guards the single-configuration commands against the
// sweep-only flags, so "-scales" on run fails loudly instead of silently
// running one configuration.
func rejectSweepAxes(cmd string, f experimentFlags) error {
	if len(f.scales) > 0 || len(f.seeds) > 0 {
		return fmt.Errorf("-scales/-seeds are sweep flags; %s takes -scale and -seed", cmd)
	}
	if f.output != "" {
		return fmt.Errorf("-o is a sweep flag; redirect %s's stdout instead", cmd)
	}
	return nil
}

func run(args []string) error {
	f, err := parseExperimentArgs(args)
	if err != nil {
		return err
	}
	if err := rejectSweepAxes("run", f); err != nil {
		return err
	}
	if len(f.pos) != 1 {
		return fmt.Errorf("run needs exactly one experiment id (or 'all')")
	}
	if f.csv && f.jsonOut {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	return f.withProfiles(func() error { return runExperiments(f) })
}

func runExperiments(f experimentFlags) error {
	tr := f.newTrace()
	runCfg := core.RunConfig{Workers: f.parallel, Trace: tr}
	finish, err := f.withCoordinator(&runCfg, tr)
	if err != nil {
		return err
	}
	defer finish()
	cacheDone, err := f.withShardCache(&runCfg, tr)
	if err != nil {
		return err
	}
	defer cacheDone()
	var results []*core.Result
	if f.pos[0] == "all" {
		results, err = core.RunIDsConfig(nil, f.opts, runCfg, printProgress)
		if err != nil {
			// Partial results still print below; main reports the joined
			// error once after them (the progress stream already flagged
			// each failure as it happened).
			fmt.Fprintln(os.Stderr, "zen2ee: some experiments failed, printing partial results")
		}
	} else {
		// Single experiments also go through the shard scheduler, so a
		// heavy one (fig7, fig8) fans its sweep points across -parallel
		// workers; results are identical to a serial run.
		results, err = core.RunIDsConfig([]string{f.pos[0]}, f.opts, runCfg, printProgress)
		if err != nil {
			return errors.Join(err, f.commitTrace(tr))
		}
	}
	if f.jsonOut {
		// The canonical JSON document — byte-identical to what the zen2eed
		// daemon serves for the same (experiment set, scale, seed), so CLI
		// and daemon outputs are directly diffable.
		var marshalStart time.Time
		if tr.Enabled() {
			marshalStart = time.Now()
		}
		werr := report.WriteJSON(os.Stdout, results, f.opts)
		if tr.Enabled() {
			tr.Add(obs.Span{Cat: obs.CatMarshal, Name: "marshal", Config: -1, Worker: -1,
				Start: tr.Offset(marshalStart), Dur: time.Since(marshalStart)})
		}
		return errors.Join(err, werr, f.commitTrace(tr))
	}
	for _, r := range results {
		if f.csv {
			if werr := report.WriteCSV(os.Stdout, r); werr != nil {
				// Keep the suite failures visible even if stdout breaks.
				return errors.Join(err, werr, f.commitTrace(tr))
			}
		} else {
			fmt.Println(r.Table())
		}
	}
	return errors.Join(err, f.commitTrace(tr))
}

// newTrace builds the run's execution-trace recorder; nil (the disabled
// recorder, costing the scheduler nothing) when -trace was not given.
func (f experimentFlags) newTrace() *obs.Trace {
	if f.trace == "" {
		return nil
	}
	return obs.New(0)
}

// commitTrace writes the recorded trace to the -trace destination through
// the same temp-file + rename path as -o. It runs even when the run itself
// failed — a trace of a failed run is exactly when you want one — and
// no-ops when tracing is off.
func (f experimentFlags) commitTrace(tr *obs.Trace) error {
	if !tr.Enabled() {
		return nil
	}
	out, commit, err := openOutput(f.trace)
	if err != nil {
		return err
	}
	spans, dropped := tr.Snapshot()
	return commit(report.WriteChromeTrace(out, spans, dropped))
}

// sweep runs the -scales × -seeds configuration grid over the named
// experiments (all of them by default) as one batched scheduler run,
// streaming each configuration's output as its last shard finishes —
// memory stays bounded by the configurations in flight, never by the grid
// size. With -o the document lands via temp-file + rename, so an
// interrupted run leaves the target untouched instead of truncated.
func sweep(args []string) error {
	f, err := parseExperimentArgs(args)
	if err != nil {
		return err
	}
	if f.csv {
		return fmt.Errorf("sweep output is per-configuration; -csv is not supported (use -json)")
	}
	if f.opts != core.DefaultOptions() {
		return fmt.Errorf("-scale/-seed are single-run flags; sweep takes -scales and -seeds")
	}
	ids := f.pos
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
	}
	return f.withProfiles(func() error {
		sw := core.Sweep{IDs: ids, Configs: core.Grid(f.scales, f.seeds)}
		tr := f.newTrace()
		runCfg := core.RunConfig{Workers: f.parallel, Trace: tr}
		finish, err := f.withCoordinator(&runCfg, tr)
		if err != nil {
			return err
		}
		defer finish()
		cacheDone, err := f.withShardCache(&runCfg, tr)
		if err != nil {
			return err
		}
		defer cacheDone()
		out, commit, err := openOutput(f.output)
		if err != nil {
			return err
		}
		if f.jsonOut {
			err = commit(streamSweepJSON(out, sw, runCfg))
		} else {
			err = commit(streamSweepTables(out, sw, runCfg))
		}
		return errors.Join(err, f.commitTrace(tr))
	})
}

// openOutput resolves the sweep's destination: stdout when path is empty,
// otherwise a temp file in the target's directory (same filesystem, so the
// rename is atomic). commit finalizes: on success it renames the temp over
// the target; on any error it removes the temp and the target is never
// touched. Stdout needs no such care — a truncated JSON document is
// invalid, not mistakable for a complete one.
func openOutput(path string) (io.Writer, func(error) error, error) {
	if path == "" {
		return os.Stdout, func(err error) error { return err }, nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, nil, err
	}
	commit := func(err error) error {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		return nil
	}
	return tmp, commit, nil
}

// streamSweepJSON emits the canonical sweep document section by section as
// configurations complete: each per-config section carries the exact bytes
// `zen2ee run -json` (and the zen2eed daemon) produce for that
// configuration alone, and the whole document is byte-identical to the
// collected report.MarshalSweep output. The SweepWriter reorders
// out-of-completion-order sections internally, so the document is in
// request order without the CLI ever holding more than the in-flight
// window.
func streamSweepJSON(w io.Writer, sw core.Sweep, cfg core.RunConfig) error {
	// Validate before the writer emits the document header, so bad requests
	// fail without partial output.
	ids, err := core.CanonicalIDs(sw.IDs)
	if err != nil {
		return err
	}
	if err := sw.Validate(); err != nil {
		return err
	}
	sweepW, err := report.NewSweepWriter(w, ids, sw.Configs)
	if err != nil {
		return err
	}
	tr := cfg.Trace
	var cbErr error
	err = core.RunSweepStream(sw, cfg, func(i int, cr core.ConfigResult, cfgErr error) {
		if cfgErr != nil || cbErr != nil {
			return // the config's failure is joined into the returned error
		}
		var marshalStart time.Time
		if tr.Enabled() {
			marshalStart = time.Now()
		}
		doc, merr := report.MarshalResults(cr.Results, cr.Config)
		if tr.Enabled() {
			tr.Add(obs.Span{Cat: obs.CatMarshal, Name: "marshal", Config: i, Worker: -1,
				Start: tr.Offset(marshalStart), Dur: time.Since(marshalStart)})
		}
		if merr != nil {
			cbErr = merr
			return
		}
		if werr := sweepW.WriteSection(i, doc); werr != nil {
			cbErr = werr
		}
	}, printProgress)
	if err == nil {
		err = cbErr
	}
	if err != nil {
		// Unlike run, a sweep is usually unattended (it is the batch
		// shape); never finalize a document with missing sections.
		return err
	}
	return sweepW.Close()
}

// streamSweepTables prints per-configuration tables in request order as
// configurations complete, reordering out-of-order completions through a
// small pending map (bounded by the scheduler's in-flight window). On a
// failed configuration the stream stops at its index: tables after a gap
// would read as a complete study.
func streamSweepTables(w io.Writer, sw core.Sweep, cfg core.RunConfig) error {
	next := 0
	pending := make(map[int]core.ConfigResult)
	return core.RunSweepStream(sw, cfg, func(i int, cr core.ConfigResult, cfgErr error) {
		if cfgErr != nil {
			return // joined into the returned error; the section stays unprinted
		}
		pending[i] = cr
		for {
			cr, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			next++
			fmt.Fprintf(w, "==== scale %g, seed %d ====\n\n", cr.Config.Scale, cr.Config.Seed)
			for _, r := range cr.Results {
				fmt.Fprintln(w, r.Table())
			}
		}
	}, printProgress)
}

func genExperiments(args []string) error {
	f, err := parseExperimentArgs(args)
	if err != nil {
		return err
	}
	if err := rejectSweepAxes("gen-experiments", f); err != nil {
		return err
	}
	if f.trace != "" {
		return fmt.Errorf("-trace is a run/sweep flag; gen-experiments does not execute a traced schedule")
	}
	if f.listenWorkers != "" || f.minWorkers > 0 {
		return fmt.Errorf("-listen-workers/-min-workers are run/sweep flags")
	}
	if f.shardCacheDir != "" || f.leaseBatch > 0 {
		return fmt.Errorf("-shard-cache/-lease-batch are run/sweep flags")
	}
	if len(f.pos) != 0 {
		return fmt.Errorf("gen-experiments takes no positional arguments")
	}
	return f.withProfiles(func() error {
		results, err := runSuite(f)
		if err != nil {
			return err
		}
		_, err = report.WriteMarkdown(os.Stdout, results, f.opts)
		return err
	})
}
