// Command zen2ee runs the paper's experiments against the simulated
// dual-EPYC-7502 system and prints the regenerated tables and figures.
//
// Usage:
//
//	zen2ee list                          # list all experiments
//	zen2ee run <id>|all [-scale S] [-seed N] [-parallel N] [-csv|-json]
//	zen2ee gen-experiments [-scale S] [-seed N] [-parallel N]
//
// Scale 1 gives quick, statistically meaningful runs; the paper's full
// protocol corresponds to roughly -scale 25. Full-suite runs are fanned
// out across -parallel worker goroutines (default: all CPUs); results are
// bit-identical to a serial run for the same seed, and per-experiment
// progress streams to stderr.
package main

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"zen2ee/internal/core"
	"zen2ee/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = list()
	case "run":
		err = run(args)
	case "gen-experiments":
		err = genExperiments(args)
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zen2ee:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  zen2ee list
  zen2ee run <id>|all [-scale S] [-seed N] [-parallel N] [-csv|-json]
  zen2ee gen-experiments [-scale S] [-seed N] [-parallel N]

flags (accepted before or after the positional argument):
  -scale S     effort scale; the paper's full protocol is ≈ 25 (default 1)
  -seed N      simulation seed (default 1)
  -parallel N  worker goroutines for full-suite runs (default: all CPUs;
               results are identical for every N)
  -csv         emit rows as CSV instead of aligned tables
  -json        emit the canonical JSON document (identical bytes to what
               the zen2eed daemon serves for the same spec)`)
}

func list() error {
	fmt.Printf("%-10s %-12s %-24s %s\n", "ID", "PAPER REF", "BENCH", "TITLE")
	for _, e := range core.Registry() {
		fmt.Printf("%-10s %-12s %-24s %s\n", e.ID, e.PaperRef, e.Bench, e.Title)
	}
	return nil
}

// experimentFlags holds the parsed flags shared by run and gen-experiments.
type experimentFlags struct {
	opts     core.Options
	csv      bool
	jsonOut  bool
	parallel int // worker count; 0 means runtime.NumCPU()
	pos      []string
}

// parseExperimentArgs scans args in a single pass, accepting flags before
// and after positional arguments and all three spellings uniformly:
// `-flag value`, `-flag=value`, and the boolean `-csv`. Unknown flags are a
// usage error rather than silently becoming positional arguments.
func parseExperimentArgs(args []string) (experimentFlags, error) {
	f := experimentFlags{opts: core.DefaultOptions()}
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			// Conventional end-of-flags marker: the rest is positional.
			f.pos = append(f.pos, args[i+1:]...)
			break
		}
		if !strings.HasPrefix(a, "-") || a == "-" {
			f.pos = append(f.pos, a)
			continue
		}
		name := strings.TrimLeft(a, "-")
		val, hasVal := "", false
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name, val, hasVal = name[:eq], name[eq+1:], true
		}
		takeValue := func() (string, error) {
			if hasVal {
				return val, nil
			}
			if i+1 >= len(args) {
				return "", fmt.Errorf("needs a value")
			}
			i++
			return args[i], nil
		}
		var err error
		switch name {
		case "scale":
			var v string
			if v, err = takeValue(); err == nil {
				if f.opts.Scale, err = strconv.ParseFloat(v, 64); err == nil {
					err = f.opts.Validate()
				}
			}
		case "seed":
			var v string
			if v, err = takeValue(); err == nil {
				f.opts.Seed, err = strconv.ParseUint(v, 10, 64)
			}
		case "parallel":
			var v string
			if v, err = takeValue(); err == nil {
				f.parallel, err = strconv.Atoi(v)
				if err == nil && f.parallel < 1 {
					err = fmt.Errorf("must be >= 1")
				}
			}
		case "csv":
			f.csv = true
			if hasVal {
				f.csv, err = strconv.ParseBool(val)
			}
		case "json":
			f.jsonOut = true
			if hasVal {
				f.jsonOut, err = strconv.ParseBool(val)
			}
		default:
			return f, fmt.Errorf("unknown flag -%s (see 'zen2ee help')", name)
		}
		if err != nil {
			return f, fmt.Errorf("flag -%s: %v", name, err)
		}
	}
	return f, nil
}

// printProgress streams scheduler events to stderr so stdout stays
// parseable: indented shard lines as a heavy experiment's sweep points
// complete, and one completion line per experiment.
func printProgress(p core.Progress) {
	status := "ok"
	if p.Err != nil {
		status = "FAILED: " + p.Err.Error()
	}
	if !p.ExperimentDone() {
		fmt.Fprintf(os.Stderr, "        %-10s shard %2d/%-2d %-20s %-8s %s\n",
			p.ID, p.Shard, p.Shards, p.Label, p.Elapsed.Round(100*time.Microsecond), status)
		return
	}
	fmt.Fprintf(os.Stderr, "[%2d/%d] %-10s %-8s %s\n",
		p.Done, p.Total, p.ID, p.Elapsed.Round(100*time.Microsecond), status)
}

// runSuite fans the full suite out across the requested workers.
func runSuite(f experimentFlags) ([]*core.Result, error) {
	return core.RunAllParallelProgress(f.opts, f.parallel, printProgress)
}

func run(args []string) error {
	f, err := parseExperimentArgs(args)
	if err != nil {
		return err
	}
	if len(f.pos) != 1 {
		return fmt.Errorf("run needs exactly one experiment id (or 'all')")
	}
	if f.csv && f.jsonOut {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	var results []*core.Result
	if f.pos[0] == "all" {
		results, err = runSuite(f)
		if err != nil {
			// Partial results still print below; main reports the joined
			// error once after them (the progress stream already flagged
			// each failure as it happened).
			fmt.Fprintln(os.Stderr, "zen2ee: some experiments failed, printing partial results")
		}
	} else {
		// Single experiments also go through the shard scheduler, so a
		// heavy one (fig7, fig8) fans its sweep points across -parallel
		// workers; results are identical to a serial run.
		results, err = core.RunIDs([]string{f.pos[0]}, f.opts, f.parallel, printProgress)
		if err != nil {
			return err
		}
	}
	if f.jsonOut {
		// The canonical JSON document — byte-identical to what the zen2eed
		// daemon serves for the same (experiment set, scale, seed), so CLI
		// and daemon outputs are directly diffable.
		if werr := report.WriteJSON(os.Stdout, results, f.opts); werr != nil {
			return errors.Join(err, werr)
		}
		return err
	}
	for _, r := range results {
		if f.csv {
			if werr := report.WriteCSV(os.Stdout, r); werr != nil {
				// Keep the suite failures visible even if stdout breaks.
				return errors.Join(err, werr)
			}
		} else {
			fmt.Println(r.Table())
		}
	}
	return err
}

func genExperiments(args []string) error {
	f, err := parseExperimentArgs(args)
	if err != nil {
		return err
	}
	if len(f.pos) != 0 {
		return fmt.Errorf("gen-experiments takes no positional arguments")
	}
	results, err := runSuite(f)
	if err != nil {
		return err
	}
	_, err = report.WriteMarkdown(os.Stdout, results, f.opts)
	return err
}
