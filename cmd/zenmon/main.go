// Command zenmon is a turbostat-style monitor for the simulated system: it
// starts a workload scenario and prints per-interval frequency, IPC, power
// and RAPL readings, illustrating the observability stack (perf counters,
// MSR-based RAPL, external meter).
//
// Usage: zenmon [-kernel NAME] [-threads N] [-mhz F] [-intervals N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"zen2ee"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0) // -h is a successful help request, not a usage error
		}
		fmt.Fprintln(os.Stderr, "zenmon:", err)
		os.Exit(1)
	}
}

// run is the monitor body, separated from main so the smoke test can drive
// a short session against buffers.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zenmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kernel := fs.String("kernel", "busywait", "workload kernel (see -list)")
	threads := fs.Int("threads", 8, "number of hardware threads to load")
	mhz := fs.Int("mhz", 2500, "requested frequency in MHz")
	intervals := fs.Int("intervals", 10, "number of 100 ms monitoring intervals")
	list := fs.Bool("list", false, "list available kernels and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(zen2ee.Kernels(), "\n"))
		return nil
	}

	sys := zen2ee.NewSystem()
	if err := sys.SetAllFrequenciesMHz(*mhz); err != nil {
		return err
	}
	n := *threads
	if n > sys.NumCPUs() {
		n = sys.NumCPUs()
	}
	for cpu := 0; cpu < n; cpu++ {
		if err := sys.Run(cpu, *kernel); err != nil {
			return err
		}
	}
	sys.AdvanceMillis(100)

	fmt.Fprintf(stdout, "monitoring cpu0 under %q on %d threads at %d MHz request\n\n", *kernel, n, *mhz)
	fmt.Fprintf(stdout, "%8s  %10s  %6s  %9s  %10s  %10s  %9s\n",
		"t [s]", "freq [GHz]", "IPC", "AC [W]", "RAPLpkg[W]", "RAPLcore[W]", "mem[GB/s]")
	for i := 0; i < *intervals; i++ {
		st := sys.Stat(0, 50)
		pkg := sys.RAPLPackageWatts(0, 25)
		core := sys.RAPLCoreWatts(0, 25)
		fmt.Fprintf(stdout, "%8.2f  %10.3f  %6.2f  %9.1f  %10.1f  %10.2f  %9.1f\n",
			sys.NowSeconds(), st.GHz, st.IPC, sys.PowerWatts(), pkg, core,
			sys.MemoryTrafficGBs())
	}
	return nil
}
