// Command zenmon is a turbostat-style monitor for the simulated system: it
// starts a workload scenario and prints per-interval frequency, IPC, power
// and RAPL readings, illustrating the observability stack (perf counters,
// MSR-based RAPL, external meter).
//
// Usage: zenmon [-kernel NAME] [-threads N] [-mhz F] [-intervals N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zen2ee"
)

func main() {
	kernel := flag.String("kernel", "busywait", "workload kernel (see -list)")
	threads := flag.Int("threads", 8, "number of hardware threads to load")
	mhz := flag.Int("mhz", 2500, "requested frequency in MHz")
	intervals := flag.Int("intervals", 10, "number of 100 ms monitoring intervals")
	list := flag.Bool("list", false, "list available kernels and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(zen2ee.Kernels(), "\n"))
		return
	}

	sys := zen2ee.NewSystem()
	if err := sys.SetAllFrequenciesMHz(*mhz); err != nil {
		fatal(err)
	}
	n := *threads
	if n > sys.NumCPUs() {
		n = sys.NumCPUs()
	}
	for cpu := 0; cpu < n; cpu++ {
		if err := sys.Run(cpu, *kernel); err != nil {
			fatal(err)
		}
	}
	sys.AdvanceMillis(100)

	fmt.Printf("monitoring cpu0 under %q on %d threads at %d MHz request\n\n", *kernel, n, *mhz)
	fmt.Printf("%8s  %10s  %6s  %9s  %10s  %10s  %9s\n",
		"t [s]", "freq [GHz]", "IPC", "AC [W]", "RAPLpkg[W]", "RAPLcore[W]", "mem[GB/s]")
	for i := 0; i < *intervals; i++ {
		st := sys.Stat(0, 50)
		pkg := sys.RAPLPackageWatts(0, 25)
		core := sys.RAPLCoreWatts(0, 25)
		fmt.Printf("%8.2f  %10.3f  %6.2f  %9.1f  %10.1f  %10.2f  %9.1f\n",
			sys.NowSeconds(), st.GHz, st.IPC, sys.PowerWatts(), pkg, core,
			sys.MemoryTrafficGBs())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zenmon:", err)
	os.Exit(1)
}
