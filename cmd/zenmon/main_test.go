package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestRunShortSession smoke-tests the monitor's main path: a two-interval
// session must produce the header plus one line per interval with sane
// readings.
func TestRunShortSession(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-intervals", "2", "-threads", "4"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `monitoring cpu0 under "busywait" on 4 threads`) {
		t.Fatalf("missing session header:\n%s", s)
	}
	if !strings.Contains(s, "RAPLpkg[W]") {
		t.Fatalf("missing column header:\n%s", s)
	}
	// Layout: session header, blank, column header, one line per interval.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 output lines for 2 intervals, got %d:\n%s", len(lines), s)
	}
}

func TestRunListKernels(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"busywait", "firestarter"} {
		if !strings.Contains(out.String(), k) {
			t.Errorf("kernel list missing %q:\n%s", k, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-kernel", "nonexistent"},
		{"-bogus"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
