// Process-level restart durability: the actual zen2eed binary run with
// -store-dir, killed with SIGKILL (no graceful flush beyond the store's
// own write-time fsync), and restarted over the same directory. The
// second process must serve the first one's computed results as cache
// hits — 200 with cached:true, byte-identical payload — without running
// anything. Builds the binary with the go tool, so skipped under -short.

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildDaemonBinary(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and execs the zen2eed binary; skipped under -short")
	}
	bin := filepath.Join(t.TempDir(), "zen2eed")
	out, err := exec.Command("go", "build", "-o", bin, "zen2ee/cmd/zen2eed").CombinedOutput()
	if err != nil {
		t.Fatalf("building zen2eed: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on an OS-assigned port and waits for
// /healthz; the returned base URL is ready to use.
func startDaemon(t *testing.T, bin, storeDir string) (*exec.Cmd, string) {
	t.Helper()
	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-store-dir", storeDir, "-executors", "2")
	var logs bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting zen2eed: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("zen2eed output:\n%s", logs.String())
		}
	})
	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never became healthy at %s:\n%s", base, logs.String())
	return nil, ""
}

func freeAddr(t *testing.T) string {
	t.Helper()
	// Ask the kernel for a free port, then release it for the daemon. The
	// tiny reuse race is acceptable in tests.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probing for a free port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

type jobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
}

func submitJob(t *testing.T, base, spec string) (jobStatus, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
	}
	return st, resp.StatusCode
}

func fetch(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

func TestE2ERestartServesWarmStoreWithoutReexecution(t *testing.T) {
	bin := buildDaemonBinary(t)
	dir := t.TempDir()
	const spec = `{"ids":["fig1"],"scale":0.2,"seed":11}`

	// First lifetime: compute one job, read its payload, then SIGKILL.
	d1, base1 := startDaemon(t, bin, dir)
	st, code := submitJob(t, base1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		body, code := fetch(t, base1+"/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("job status: %d (%s)", code, body)
		}
		var cur jobStatus
		if err := json.Unmarshal([]byte(body), &cur); err != nil {
			t.Fatal(err)
		}
		if cur.State == "done" {
			break
		}
		if cur.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	payload1, code := fetch(t, base1+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("first result: %d", code)
	}
	d1.Process.Kill()
	d1.Wait()

	// Second lifetime over the same store directory: the identical spec is
	// a warm hit — no 202, no execution, same bytes.
	_, base2 := startDaemon(t, bin, dir)
	st2, code := submitJob(t, base2, spec)
	if code != http.StatusOK {
		t.Fatalf("restart submit: %d, want 200 (disk state must survive SIGKILL)", code)
	}
	if st2.State != "done" || !st2.Cached {
		t.Fatalf("restart submit status %+v, want a cached done job", st2)
	}
	payload2, code := fetch(t, base2+"/v1/jobs/"+st2.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("restart result: %d", code)
	}
	if payload2 != payload1 {
		t.Fatal("restarted daemon served different bytes for the same spec")
	}
	metricsText, _ := fetch(t, base2+"/metrics")
	if !strings.Contains(metricsText, "zen2eed_jobs_completed_total 0") {
		t.Errorf("restarted daemon executed a job; metrics:\n%s", metricsText)
	}
}
