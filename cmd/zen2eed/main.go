// Command zen2eed is the experiment-serving daemon: an HTTP/JSON front end
// over the core scheduler with a bounded job queue, a content-addressed
// result cache with singleflight deduplication, live SSE progress streams,
// and Prometheus metrics. Sweeps batch many (Scale, Seed) configurations
// into one job, content-addressed per configuration against the same cache
// single jobs use.
//
// Usage: zen2eed [-addr :8080] [-executors N] [-queue N] [-cache N]
// [-cache-bytes N] [-sse-keepalive D] [-log-format text|json] [-log-level L]
// [-trace-bytes N] [-pprof] [-listen-workers] [-lease-ttl D] [-lease-batch K]
// [-tenant-config F] [-store-dir D] [-store-bytes N] [-shard-cache]
//
// With -tenant-config the daemon enforces multi-tenant governance: job
// submissions authenticate with API keys (Authorization: Bearer or
// X-API-Key), each tenant carries token-bucket rate limits, inflight and
// queue quotas, an optional circuit breaker, and a weighted fair share of
// the executor slots; interactive jobs preempt bulk sweeps between
// shards. GET /v1/tenants lists live per-tenant usage.
//
// With -store-dir computed results are also written through to a
// content-addressed directory of files: entries evicted from the in-memory
// cache (and results computed before a restart) are served from disk
// instead of being re-simulated, and daemons sharing the directory warm
// each other.
//
// With -shard-cache individual shard outputs are additionally memoized in
// the result store under their deterministic (experiment, scale, seed,
// shard) address: a sweep that shares configurations with earlier work
// re-executes only its missing shards, and combined with -store-dir a
// daemon killed mid-sweep resumes from its last completed shard — with
// byte-identical results, since the cached gob payloads round-trip
// float64 values exactly.
//
// With -listen-workers the daemon also acts as a distributed shard
// coordinator: headless worker processes started with
//
//	zen2eed -worker http://coordinator:8080 [-worker-name N] [-executors S]
//
// register over POST /dist/v1/*, lease (configuration, experiment, shard)
// tasks, and execute them with the same per-shard RNG streams the local
// scheduler derives — results are byte-identical however the shards are
// placed. GET /v1/workers reports the pool. Workers that miss heartbeats
// for -lease-ttl lose their leases, which re-queue on the survivors (or
// run locally); a SIGTERM'd worker finishes its in-flight shards and
// deregisters, relinquishing anything unfinished immediately.
//
// The daemon logs structured events via log/slog: one access line per
// request and job lifecycle events (queued/started/done/failed) carrying a
// short job correlation ID. -log-format picks text or JSON encoding;
// -log-level sets the threshold (debug adds per-experiment and per-config
// completion events). Every executed job also records a Chrome trace-event
// document served at /v1/jobs/{id}/trace; -trace-bytes bounds the per-job
// span buffer (-1 disables tracing).
//
//	curl -d '{"ids":["fig3"],"scale":1,"seed":1}' localhost:8080/v1/jobs
//	curl -d '{"ids":["fig7"],"scales":[1,2],"seeds":[1,2,3]}' localhost:8080/v1/sweeps
//	curl localhost:8080/v1/jobs                    # list active/recent jobs
//	curl localhost:8080/v1/jobs/<id>/events        # live SSE progress
//	curl localhost:8080/v1/jobs/<id>/result        # canonical result JSON
//	curl localhost:8080/metrics
//
// With -pprof the standard net/http/pprof handlers are mounted under
// /debug/pprof/, so hot paths can be profiled on a live daemon:
//
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=30
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zen2ee/internal/dist"
	"zen2ee/internal/service"
	"zen2ee/internal/shardcache"
	"zen2ee/internal/store"
	"zen2ee/internal/tenant"
)

// options is the parsed command line.
type options struct {
	addr      string
	pprof     bool
	logFormat string
	logLevel  string
	// worker switches the process into headless worker mode against the
	// coordinator at this base URL; workerName overrides its reported name.
	worker     string
	workerName string
	// tenantConfig is the -tenant-config JSON path; storeDir/storeBytes
	// configure the persistent result-store tier. Loaded in main, not
	// parseFlags, so flag validation stays free of filesystem access.
	tenantConfig string
	storeDir     string
	storeBytes   int64
	// shardCache enables shard-output memoization: in daemon mode shard
	// outputs land in the result store (disk-backed with -store-dir); in
	// worker mode the worker keeps a bounded memory tier sized by
	// -cache/-cache-bytes. leaseBatch tunes the dist protocol's batch
	// size on whichever side this process runs.
	shardCache bool
	leaseBatch int
	cfg        service.Config
}

// buildLogger resolves the -log-format/-log-level pair into the daemon's
// slog.Logger, writing to w.
func (o options) buildLogger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	if err := level.UnmarshalText([]byte(o.logLevel)); err != nil {
		return nil, fmt.Errorf("-log-level: %q is not a slog level (debug, info, warn, error)", o.logLevel)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(o.logFormat) {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format: %q is not text or json", o.logFormat)
	}
}

// parseFlags is main's flag handling, separated for testing.
func parseFlags(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("zen2eed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.cfg.Executors, "executors", 2, "experiment shards simulating concurrently across all jobs (a lone heavy job fans out over the whole pool)")
	fs.IntVar(&o.cfg.QueueDepth, "queue", 64, "bounded job queue depth; submissions beyond it get 503")
	fs.IntVar(&o.cfg.CacheEntries, "cache", 256, "content-addressed result cache entries")
	fs.Int64Var(&o.cfg.CacheBytes, "cache-bytes", 0,
		"result cache byte bound: entries are weighted by payload size and evicted LRU-first past it (0 = unbounded; the entry bound still applies)")
	fs.DurationVar(&o.cfg.SSEKeepAlive, "sse-keepalive", 15*time.Second,
		"idle interval between SSE comment frames on progress streams (keeps proxies from dropping long sweeps)")
	fs.BoolVar(&o.pprof, "pprof", false,
		"expose net/http/pprof handlers under /debug/pprof/ for in-situ profiling")
	fs.StringVar(&o.logFormat, "log-format", "text",
		"structured log encoding: text or json")
	fs.StringVar(&o.logLevel, "log-level", "info",
		"log threshold: debug, info, warn, or error (debug adds per-experiment and per-config completion events)")
	fs.Int64Var(&o.cfg.TraceBytes, "trace-bytes", 0,
		"per-job execution-trace span buffer bound in bytes (0 = the 1 MiB default, negative disables per-job tracing)")
	fs.BoolVar(&o.cfg.Dist, "listen-workers", false,
		"accept remote 'zen2eed -worker' processes on this daemon's address: mounts the /dist/v1/ worker protocol and GET /v1/workers, and dispatches job shards to the connected pool")
	fs.DurationVar(&o.cfg.DistLeaseTTL, "lease-ttl", 0,
		"how long a worker may go silent before its leased shards re-queue elsewhere (0 = the 15s default; needs -listen-workers)")
	fs.StringVar(&o.worker, "worker", "",
		"run as a headless worker for the coordinator at this base URL (http://host:port) instead of serving; -executors sets the concurrent shard slots")
	fs.StringVar(&o.workerName, "worker-name", "",
		"name this worker reports to the coordinator (default: hostname-pid; needs -worker)")
	fs.StringVar(&o.tenantConfig, "tenant-config", "",
		"JSON tenant config enabling multi-tenant governance: API-key auth on submissions, per-tenant rate limits, quotas, circuit breaking, and weighted fair scheduling (omitted = single anonymous tenant, no auth)")
	fs.StringVar(&o.storeDir, "store-dir", "",
		"directory for the persistent result-store tier: computed results are written through to content-addressed files and survive daemon restarts (omitted = memory-only cache)")
	fs.Int64Var(&o.storeBytes, "store-bytes", 0,
		"persistent store tier byte bound, evicted LRU-first past it (0 = unbounded; needs -store-dir)")
	fs.BoolVar(&o.shardCache, "shard-cache", false,
		"memoize individual shard outputs by their deterministic address: warm shards skip execution, and with -store-dir an interrupted sweep resumes from its last completed shard after a restart; in -worker mode the worker keeps a bounded in-memory shard cache consulted before executing")
	fs.IntVar(&o.leaseBatch, "lease-batch", 0,
		"shard tasks moved per dist lease round trip: with -listen-workers, the most one worker poll may be granted (0 = the 16 default); with -worker, the batch size requested per poll (0 = the slot count)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() != 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if _, err := o.buildLogger(io.Discard); err != nil {
		return o, err
	}
	if o.cfg.Executors < 1 || o.cfg.QueueDepth < 1 || o.cfg.CacheEntries < 1 {
		return o, fmt.Errorf("-executors, -queue and -cache must be >= 1")
	}
	if o.cfg.CacheBytes < 0 {
		return o, fmt.Errorf("-cache-bytes must be >= 0 (0 means unbounded)")
	}
	if o.cfg.SSEKeepAlive < time.Second {
		return o, fmt.Errorf("-sse-keepalive must be >= 1s")
	}
	if o.worker != "" && o.cfg.Dist {
		return o, fmt.Errorf("-worker and -listen-workers are mutually exclusive: a process either serves jobs or executes another coordinator's shards")
	}
	if o.workerName != "" && o.worker == "" {
		return o, fmt.Errorf("-worker-name only applies with -worker")
	}
	if o.cfg.DistLeaseTTL < 0 {
		return o, fmt.Errorf("-lease-ttl must be >= 0 (0 means the 15s default)")
	}
	if o.cfg.DistLeaseTTL > 0 && !o.cfg.Dist {
		return o, fmt.Errorf("-lease-ttl only applies with -listen-workers")
	}
	if o.storeBytes < 0 {
		return o, fmt.Errorf("-store-bytes must be >= 0 (0 means unbounded)")
	}
	if o.storeBytes > 0 && o.storeDir == "" {
		return o, fmt.Errorf("-store-bytes only applies with -store-dir")
	}
	if o.worker != "" && (o.tenantConfig != "" || o.storeDir != "") {
		return o, fmt.Errorf("-tenant-config and -store-dir only apply to the serving daemon, not -worker mode")
	}
	if o.leaseBatch < 0 {
		return o, fmt.Errorf("-lease-batch must be >= 0 (0 means the default)")
	}
	if o.leaseBatch > 0 && o.worker == "" && !o.cfg.Dist {
		return o, fmt.Errorf("-lease-batch only applies with -worker or -listen-workers")
	}
	o.cfg.ShardCache = o.shardCache
	o.cfg.DistLeaseBatch = o.leaseBatch
	return o, nil
}

// runWorker is the -worker mode: a headless pool member that leases and
// executes shards for a remote coordinator until SIGTERM/SIGINT, then
// drains — in-flight shards finish and complete, anything unfinished past
// the drain bound is relinquished via deregister so the coordinator
// re-queues it immediately.
func runWorker(o options, logger *slog.Logger) error {
	host, _ := os.Hostname()
	name := o.workerName
	if name == "" {
		if host == "" {
			name = fmt.Sprintf("worker-%d", os.Getpid())
		} else {
			name = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
	}
	cfg := dist.WorkerConfig{
		Coordinator: o.worker, Name: name, Host: host, PID: os.Getpid(),
		Slots: o.cfg.Executors, LeaseBatch: o.leaseBatch, Logger: logger,
	}
	if o.shardCache {
		// Worker-side memoization is memory-only (workers are disposable);
		// the -cache/-cache-bytes bounds, unused in worker mode otherwise,
		// size it.
		cfg.Cache = shardcache.New(store.NewMemory(o.cfg.CacheEntries, o.cfg.CacheBytes), "")
	}
	w, err := dist.NewWorker(cfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "zen2eed: worker %q executing %d slot(s) for %s\n",
		name, o.cfg.Executors, o.worker)
	return w.Run(ctx)
}

// withPprof mounts the net/http/pprof handlers in front of the service when
// enabled (explicit registration — the daemon does not use the default mux,
// so the pprof package's init registrations never become reachable without
// the flag).
func withPprof(svc http.Handler, enabled bool) http.Handler {
	if !enabled {
		return svc
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", svc)
	return mux
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0) // -h is a successful help request, not a usage error
		}
		fmt.Fprintln(os.Stderr, "zen2eed:", err)
		os.Exit(2)
	}

	logger, err := o.buildLogger(os.Stderr)
	if err != nil {
		// Unreachable after parseFlags validated the pair; keep the guard in
		// case the two drift.
		fmt.Fprintln(os.Stderr, "zen2eed:", err)
		os.Exit(2)
	}
	o.cfg.Logger = logger

	if o.worker != "" {
		if err := runWorker(o, logger); err != nil {
			fmt.Fprintln(os.Stderr, "zen2eed:", err)
			os.Exit(1)
		}
		return
	}

	if o.tenantConfig != "" {
		reg, err := tenant.LoadFile(o.tenantConfig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zen2eed:", err)
			os.Exit(2)
		}
		o.cfg.Tenants = reg
	}
	if o.storeDir != "" {
		disk, err := store.NewDisk(o.storeDir, o.storeBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zen2eed:", err)
			os.Exit(2)
		}
		// The memory LRU keeps its -cache/-cache-bytes bounds as tier 1;
		// the disk tier resurrects whatever memory evicts.
		o.cfg.Store = store.NewTiered(
			store.NewMemory(o.cfg.CacheEntries, o.cfg.CacheBytes), disk)
	}

	svc := service.New(o.cfg)
	defer svc.Close()
	httpServer := &http.Server{Addr: o.addr, Handler: withPprof(svc, o.pprof)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpServer.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "zen2eed: serving on %s (executors %d, queue %d, cache %d)\n",
		o.addr, o.cfg.Executors, o.cfg.QueueDepth, o.cfg.CacheEntries)
	if o.cfg.Dist {
		fmt.Fprintf(os.Stderr, "zen2eed: accepting workers (join with: zen2eed -worker http://HOST%s)\n", o.addr)
	}
	if o.cfg.Tenants != nil {
		fmt.Fprintf(os.Stderr, "zen2eed: multi-tenant governance enabled (%d tenants)\n", len(o.cfg.Tenants.Tenants()))
	}
	if o.storeDir != "" {
		fmt.Fprintf(os.Stderr, "zen2eed: persistent result store at %s\n", o.storeDir)
	}
	if o.shardCache {
		fmt.Fprintln(os.Stderr, "zen2eed: shard-output memoization enabled")
	}
	if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "zen2eed:", err)
		os.Exit(1)
	}
}
