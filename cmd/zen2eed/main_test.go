package main

import (
	"io"
	"testing"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:9999", "-executors", "4", "-queue", "8", "-cache", "16"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:9999" || o.cfg.Executors != 4 || o.cfg.QueueDepth != 8 || o.cfg.CacheEntries != 16 {
		t.Fatalf("parsed %+v", o)
	}
	if o, err = parseFlags(nil, io.Discard); err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.cfg.Executors != 2 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"positional"},
		{"-executors", "0"},
		{"-queue", "-5"},
		{"-cache", "0"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
