package main

import (
	"io"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:9999", "-executors", "4", "-queue", "8", "-cache", "16", "-sse-keepalive", "30s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:9999" || o.cfg.Executors != 4 || o.cfg.QueueDepth != 8 || o.cfg.CacheEntries != 16 || o.cfg.SSEKeepAlive != 30*time.Second {
		t.Fatalf("parsed %+v", o)
	}
	if o, err = parseFlags(nil, io.Discard); err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.cfg.Executors != 2 || o.cfg.SSEKeepAlive != 15*time.Second {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"positional"},
		{"-executors", "0"},
		{"-queue", "-5"},
		{"-cache", "0"},
		{"-sse-keepalive", "50ms"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
