package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:9999", "-executors", "4", "-queue", "8", "-cache", "16", "-sse-keepalive", "30s", "-pprof"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:9999" || o.cfg.Executors != 4 || o.cfg.QueueDepth != 8 || o.cfg.CacheEntries != 16 || o.cfg.SSEKeepAlive != 30*time.Second || !o.pprof {
		t.Fatalf("parsed %+v", o)
	}
	if o, err = parseFlags(nil, io.Discard); err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.cfg.Executors != 2 || o.cfg.SSEKeepAlive != 15*time.Second || o.pprof {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.logFormat != "text" || o.logLevel != "info" || o.cfg.TraceBytes != 0 {
		t.Fatalf("observability defaults wrong: %+v", o)
	}
	if o, err = parseFlags([]string{"-log-format", "json", "-log-level", "debug", "-trace-bytes", "-1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if o.logFormat != "json" || o.logLevel != "debug" || o.cfg.TraceBytes != -1 {
		t.Fatalf("observability flags wrong: %+v", o)
	}
}

// TestBuildLogger: the -log-format/-log-level pair resolves to handlers
// with the right encoding and threshold.
func TestBuildLogger(t *testing.T) {
	var buf bytes.Buffer
	o := options{logFormat: "json", logLevel: "warn"}
	log, err := o.buildLogger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("below threshold")
	log.Warn("kept")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("json handler output is not one JSON line: %q", buf.String())
	}
	if line["msg"] != "kept" || line["level"] != "WARN" {
		t.Fatalf("logged %v, want the warn record only", line)
	}

	buf.Reset()
	o = options{logFormat: "TEXT", logLevel: "INFO"} // case-insensitive
	if log, err = o.buildLogger(&buf); err != nil {
		t.Fatal(err)
	}
	log.Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Fatalf("text handler output %q lacks logfmt msg", buf.String())
	}
}

func TestWithPprof(t *testing.T) {
	svc := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot) // sentinel for "reached the service"
	})
	probe := func(h http.Handler, path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	off := withPprof(svc, false)
	if code := probe(off, "/debug/pprof/"); code != http.StatusTeapot {
		t.Fatalf("pprof disabled: /debug/pprof/ hit status %d, want service sentinel", code)
	}
	on := withPprof(svc, true)
	if code := probe(on, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof enabled: index status %d, want 200", code)
	}
	if code := probe(on, "/v1/jobs"); code != http.StatusTeapot {
		t.Fatalf("pprof enabled: service route status %d, want sentinel", code)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"positional"},
		{"-executors", "0"},
		{"-queue", "-5"},
		{"-cache", "0"},
		{"-sse-keepalive", "50ms"},
		{"-log-format", "xml"},
		{"-log-level", "loud"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
