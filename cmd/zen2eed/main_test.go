package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:9999", "-executors", "4", "-queue", "8", "-cache", "16", "-sse-keepalive", "30s", "-pprof"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:9999" || o.cfg.Executors != 4 || o.cfg.QueueDepth != 8 || o.cfg.CacheEntries != 16 || o.cfg.SSEKeepAlive != 30*time.Second || !o.pprof {
		t.Fatalf("parsed %+v", o)
	}
	if o, err = parseFlags(nil, io.Discard); err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.cfg.Executors != 2 || o.cfg.SSEKeepAlive != 15*time.Second || o.pprof {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestWithPprof(t *testing.T) {
	svc := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot) // sentinel for "reached the service"
	})
	probe := func(h http.Handler, path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	off := withPprof(svc, false)
	if code := probe(off, "/debug/pprof/"); code != http.StatusTeapot {
		t.Fatalf("pprof disabled: /debug/pprof/ hit status %d, want service sentinel", code)
	}
	on := withPprof(svc, true)
	if code := probe(on, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof enabled: index status %d, want 200", code)
	}
	if code := probe(on, "/v1/jobs"); code != http.StatusTeapot {
		t.Fatalf("pprof enabled: service route status %d, want sentinel", code)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"positional"},
		{"-executors", "0"},
		{"-queue", "-5"},
		{"-cache", "0"},
		{"-sse-keepalive", "50ms"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
