package zen2ee

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys := NewSystem()
	if sys.NumCPUs() != 128 || sys.NumCores() != 64 {
		t.Fatalf("topology %d CPUs / %d cores", sys.NumCPUs(), sys.NumCores())
	}
	sys.AdvanceMillis(20)
	if p := sys.PowerWatts(); math.Abs(p-99.1) > 0.1 {
		t.Fatalf("idle power %v", p)
	}
	if err := sys.SetAllFrequenciesMHz(2500); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < sys.NumCPUs(); cpu++ {
		if err := sys.Run(cpu, "firestarter"); err != nil {
			t.Fatal(err)
		}
	}
	sys.AdvanceMillis(300)
	if f := sys.CoreGHz(0); f < 2.0 || f > 2.06 {
		t.Fatalf("EDC-throttled frequency %v GHz", f)
	}
	if p := sys.PowerWatts(); math.Abs(p-509) > 10 {
		t.Fatalf("FIRESTARTER power %v W", p)
	}
	rapl := sys.RAPLPackageWatts(0, 500)
	if math.Abs(rapl-170) > 10 {
		t.Fatalf("RAPL package %v W", rapl)
	}
}

func TestUnknownKernelAndSetting(t *testing.T) {
	sys := NewSystem()
	if err := sys.Run(0, "definitely-not-a-kernel"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if err := sys.SetIODieSetting("P9"); err == nil {
		t.Fatal("unknown I/O-die setting accepted")
	}
	if err := sys.SetIODieSetting("P2"); err != nil {
		t.Fatal(err)
	}
}

func TestStatAndStop(t *testing.T) {
	sys := NewSystem()
	sys.SetFrequencyMHz(0, 2200)
	if err := sys.Run(0, "busywait"); err != nil {
		t.Fatal(err)
	}
	sys.AdvanceMillis(20)
	st := sys.Stat(0, 200)
	if math.Abs(st.GHz-2.2) > 0.01 {
		t.Fatalf("stat GHz %v", st.GHz)
	}
	sys.Stop(0)
	sys.AdvanceMillis(10)
	st = sys.Stat(0, 100)
	if st.GHz != 0 {
		t.Fatalf("stopped CPU still cycling at %v GHz", st.GHz)
	}
}

func TestMeter(t *testing.T) {
	sys := NewSystem()
	mt := sys.AttachMeter()
	sys.AdvanceMillis(100)
	w, err := mt.MeasureWatts(1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-99.1) > 0.2 {
		t.Fatalf("metered idle %v W", w)
	}
}

func TestAblationOptions(t *testing.T) {
	// No EDC manager: FIRESTARTER stays at nominal frequency.
	sys := NewSystem(WithoutEDCManager())
	sys.SetAllFrequenciesMHz(2500)
	for cpu := 0; cpu < sys.NumCPUs(); cpu++ {
		sys.Run(cpu, "firestarter")
	}
	sys.AdvanceMillis(300)
	if f := sys.CoreGHz(0); f != 2.5 {
		t.Fatalf("without EDC: %v GHz, want 2.5", f)
	}

	// No coupling: mixed CCX frequencies keep their settings.
	sys2 := NewSystem(WithoutCCXCoupling())
	sys2.SetFrequencyMHz(0, 1500)
	sys2.Run(0, "busywait")
	for c := 1; c < 4; c++ {
		cpu := c
		sys2.SetFrequencyMHz(cpu, 2500)
		sys2.Run(cpu, "busywait")
	}
	sys2.AdvanceMillis(50)
	if f := sys2.CoreGHz(0); f != 1.5 {
		t.Fatalf("without coupling: %v GHz, want 1.5", f)
	}

	// No offline anomaly: offlining keeps deep sleep.
	sys3 := NewSystem(WithoutOfflineAnomaly())
	sys3.AdvanceMillis(20)
	floor := sys3.PowerWatts()
	sys3.SetOnline(64, false)
	sys3.AdvanceMillis(20)
	if p := sys3.PowerWatts(); math.Abs(p-floor) > 0.01 {
		t.Fatalf("ablated anomaly still raises power: %v vs %v", p, floor)
	}
}

func TestWakeLatencyAPI(t *testing.T) {
	sys := NewSystem()
	sys.SetAllFrequenciesMHz(2500)
	sys.AdvanceMillis(20)
	us := sys.WakeLatencyMicros(5, false)
	if us < 20 || us > 25 {
		t.Fatalf("C2 wake %v µs", us)
	}
}

func TestExperimentRegistryAPI(t *testing.T) {
	exps := Experiments()
	if len(exps) != 19 {
		t.Fatalf("%d experiments", len(exps))
	}
	r, err := RunExperiment("sec6acpi", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "sec6acpi" || r.Table() == "" {
		t.Fatal("bad result")
	}
	if _, err := RunExperiment("nope", DefaultOptions()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestKernelsAndSettingsLists(t *testing.T) {
	if len(Kernels()) < 15 {
		t.Fatalf("kernels: %v", Kernels())
	}
	if len(IODieSettings()) != 5 {
		t.Fatalf("settings: %v", IODieSettings())
	}
}

func TestHammingWeightAPI(t *testing.T) {
	sys := NewSystem()
	sys.SetAllFrequenciesMHz(2500)
	for cpu := 0; cpu < sys.NumCPUs(); cpu++ {
		if err := sys.RunWeighted(cpu, "vxorps", 1.0); err != nil {
			t.Fatal(err)
		}
	}
	sys.AdvanceMillis(50)
	p1 := sys.PowerWatts()
	for cpu := 0; cpu < sys.NumCPUs(); cpu++ {
		sys.RunWeighted(cpu, "vxorps", 0.0)
	}
	sys.AdvanceMillis(50)
	p0 := sys.PowerWatts()
	if math.Abs((p1-p0)-21) > 1 {
		t.Fatalf("vxorps weight swing %v W, want ~21", p1-p0)
	}
}

func TestIntelSlotGridOption(t *testing.T) {
	sys := NewSystem(WithIntelSlotGrid())
	sys.SetFrequencyMHz(0, 1500)
	sys.Run(0, "busywait")
	sys.AdvanceMillis(20)
	// Transition must complete within the Intel bound (524 µs) rather than
	// the Zen 2 worst case (1390 µs).
	sys.SetFrequencyMHz(0, 2500)
	var us float64
	for us = 0; us < 600; us += 5 {
		if sys.CoreGHz(0) == 2.5 {
			break
		}
		sys.AdvanceMicros(5)
	}
	if us >= 600 {
		t.Fatalf("Intel-grid transition took ≥600 µs")
	}
}
