module zen2ee

go 1.24
