package zen2ee

// The cross-worker-count determinism matrix: the scheduling-model contract
// is that sharded and monolithic execution of the same (ids, scale, seed)
// produce byte-identical canonical JSON (report.MarshalResults) for every
// worker count and shard interleaving. These tests pin that contract on the
// heavy sharded experiments the redesign targets.

import (
	"bytes"
	"testing"

	"zen2ee/internal/core"
	"zen2ee/internal/report"
)

// marshalSet runs the named experiments through the shard scheduler at the
// given worker count and returns the canonical JSON document.
func marshalSet(t *testing.T, ids []string, o core.Options, workers int) []byte {
	t.Helper()
	results, err := core.RunIDs(ids, o, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := report.MarshalResults(results, o)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFig7DeterminismMatrix(t *testing.T) {
	o := core.Options{Scale: 2, Seed: 1}
	ids := []string{"fig7"}

	// Monolithic reference: RunOne executes the synthesized serial plan on
	// one goroutine.
	mono, err := core.RunOne("fig7", o)
	if err != nil {
		t.Fatal(err)
	}
	want, err := report.MarshalResults([]*core.Result{mono}, o)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		got := marshalSet(t, ids, o, workers)
		if !bytes.Equal(got, want) {
			t.Errorf("fig7 with %d workers produced different canonical JSON than the monolithic run", workers)
		}
	}
}

func TestShardedSuiteDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sharded heavy set three times")
	}
	// All four converted experiments at once, so cross-experiment shard
	// interleaving is exercised too.
	ids := []string{"tab1", "fig4", "fig7", "fig8"}
	o := core.Options{Scale: 0.5, Seed: 42}
	want := marshalSet(t, ids, o, 1)
	for _, workers := range []int{2, 8} {
		if got := marshalSet(t, ids, o, workers); !bytes.Equal(got, want) {
			t.Errorf("worker count %d changed the canonical JSON document", workers)
		}
	}
}
