package zen2ee

// The sweep determinism matrix: the sweep-first API's contract is that
// batching (Scale, Seed) configurations changes scheduling, never bytes.
// For a sweep over a scales × seeds grid, each per-config section of the
// canonical sweep document must be byte-identical to the standalone RunIDs
// document for that configuration, at every worker count. CI runs these
// under -race as well (go test -race -run Sweep .), covering the merged
// multi-config task set's synchronization.

import (
	"bytes"
	"testing"

	"zen2ee/internal/core"
	"zen2ee/internal/report"
)

func TestSweepDeterminismMatrix(t *testing.T) {
	ids := []string{"fig1", "sec5a"}
	configs := core.Grid([]float64{0.2, 0.4}, []uint64{1, 2})
	sw := core.Sweep{IDs: ids, Configs: configs}

	// Standalone references: one single-configuration document per grid
	// point, computed serially.
	refs := make([][]byte, len(configs))
	for i, c := range configs {
		refs[i] = marshalSet(t, ids, c, 1)
	}

	for _, workers := range []int{1, 2, 8} {
		sr, err := core.RunSweep(sw, core.RunConfig{Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := report.MarshalSweep(sr)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := report.UnmarshalSweep(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(parsed.Configs) != len(configs) {
			t.Fatalf("workers %d: sweep document has %d sections, want %d", workers, len(parsed.Configs), len(configs))
		}
		for i, section := range parsed.Configs {
			if section.Config != configs[i] {
				t.Fatalf("workers %d: section %d keyed by %+v, want %+v", workers, i, section.Config, configs[i])
			}
			got, err := section.Document()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, refs[i]) {
				t.Errorf("workers %d: sweep section for scale %g seed %d differs from the standalone RunIDs document",
					workers, configs[i].Scale, configs[i].Seed)
			}
		}
	}
}

// TestSweepPublicAPI exercises the root-package re-exports end to end: a
// Grid-built Sweep through RunSweep, with sections matching standalone
// RunExperimentSet runs.
func TestSweepPublicAPI(t *testing.T) {
	sw := Sweep{IDs: []string{"fig1"}, Configs: Grid([]float64{0.2}, []uint64{1, 2})}
	sr, err := RunSweep(sw, RunConfig{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Runs) != 2 {
		t.Fatalf("%d sections, want 2", len(sr.Runs))
	}
	for _, run := range sr.Runs {
		alone, err := RunExperimentSet([]string{"fig1"}, run.Config, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := report.MarshalResults(alone, run.Config)
		if err != nil {
			t.Fatal(err)
		}
		got, err := report.MarshalResults(run.Results, run.Config)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("config %+v: sweep section differs from RunExperimentSet bytes", run.Config)
		}
	}
}
