package zen2ee

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper, each regenerating the artifact through the same experiment
// runner the CLI uses, and reporting the headline quantities as custom
// benchmark metrics. Ablation benchmarks isolate the design choices called
// out in DESIGN.md (slot grid, EDC manager, CCX coupling, modeled-vs-
// measured RAPL, Intel idle baseline).
//
// Run with: go test -bench=. -benchmem

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"zen2ee/internal/core"
	"zen2ee/internal/intelmodel"
	"zen2ee/internal/report"
	"zen2ee/internal/service"
	"zen2ee/internal/sim"
)

// benchOptions keeps each iteration fast while staying statistically
// meaningful; the CLI exposes the paper's full sample counts.
func benchOptions(i int) core.Options {
	return core.Options{Scale: 0.2, Seed: uint64(i + 1)}
}

// runArtifact executes one registered experiment per iteration and reports
// selected metrics from the final run.
func runArtifact(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	var last *core.Result
	for i := 0; i < b.N; i++ {
		e, err := core.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		last, err = e.Run(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	for key, unit := range metrics {
		if v, ok := last.Metric(key); ok {
			b.ReportMetric(v, unit)
		} else {
			b.Fatalf("experiment %s has no metric %q", id, key)
		}
	}
}

func BenchmarkFig1Green500(b *testing.B) {
	runArtifact(b, "fig1", map[string]string{"rome_median": "GFlops/W"})
}

func BenchmarkSec5AIdleSibling(b *testing.B) {
	runArtifact(b, "sec5a", map[string]string{"idle_sibling_ghz": "GHz"})
}

func BenchmarkFig3TransitionHistogram(b *testing.B) {
	runArtifact(b, "fig3", map[string]string{
		"min_us": "µs/min", "max_us": "µs/max", "mean_us": "µs/mean",
	})
}

func BenchmarkSec5BFastReturn(b *testing.B) {
	runArtifact(b, "sec5b", map[string]string{
		"min_up_us": "µs/up", "min_down_us": "µs/down",
	})
}

func BenchmarkTable1MixedFrequencies(b *testing.B) {
	runArtifact(b, "tab1", map[string]string{
		"set2200_others2500": "GHz/2.2|2.5", "set1500_others2500": "GHz/1.5|2.5",
	})
}

func BenchmarkFig4L3Latency(b *testing.B) {
	runArtifact(b, "fig4", map[string]string{
		"reader1500_others1500_ns": "ns/slow", "reader1500_others2500_ns": "ns/boosted",
	})
}

func BenchmarkFig5aStreamBandwidth(b *testing.B) {
	runArtifact(b, "fig5a", map[string]string{
		"bw_P2_1600_4": "GB/s/best", "bw_P3_1467_1": "GB/s/worst1c",
	})
}

func BenchmarkFig5bMemoryLatency(b *testing.B) {
	runArtifact(b, "fig5b", map[string]string{
		"lat_auto_1467": "ns/auto", "lat_P0_1467": "ns/P0",
	})
}

func BenchmarkFig6Firestarter(b *testing.B) {
	runArtifact(b, "fig6", map[string]string{
		"smt_freq_ghz": "GHz/smt", "nosmt_freq_ghz": "GHz/nosmt",
		"smt_ac_watts": "W/smt", "smt_rapl_pkg_watts": "W/rapl",
	})
}

func BenchmarkFig7IdlePowerSweep(b *testing.B) {
	runArtifact(b, "fig7", map[string]string{
		"floor_watts": "W/floor", "first_c1_watts": "W/firstC1",
		"active_core_slope_watts": "W/activecore",
	})
}

func BenchmarkSec6ACPITable(b *testing.B) {
	runArtifact(b, "sec6acpi", map[string]string{"c2_latency_us": "µs/acpiC2"})
}

func BenchmarkSec6BOfflineAnomaly(b *testing.B) {
	runArtifact(b, "sec6b", map[string]string{"offline_watts": "W/offline"})
}

func BenchmarkFig8WakeupLatency(b *testing.B) {
	runArtifact(b, "fig8", map[string]string{
		"C1_2500_local_median_us": "µs/C1", "C2_2500_local_median_us": "µs/C2",
	})
}

func BenchmarkSec7RAPLUpdateRate(b *testing.B) {
	runArtifact(b, "sec7u", map[string]string{"update_interval_ms": "ms/update"})
}

func BenchmarkFig9RAPLQuality(b *testing.B) {
	runArtifact(b, "fig9", map[string]string{
		"fit_slope": "slope", "mem_pkg_over_ac": "ratio/mem",
		"compute_pkg_over_ac": "ratio/compute",
	})
}

func BenchmarkFig10HammingWeight(b *testing.B) {
	runArtifact(b, "fig10", map[string]string{
		"ac_swing_watts": "W/swing", "rapl_core_overlap": "overlap",
	})
}

func BenchmarkSec7BShr(b *testing.B) {
	runArtifact(b, "sec7b", map[string]string{"ac_rel_diff": "rel/ac"})
}

func BenchmarkExtBoost(b *testing.B) {
	runArtifact(b, "extboost", map[string]string{
		"light_boost_ghz": "GHz/light", "dense_boost_ghz": "GHz/dense",
	})
}

func BenchmarkExt7742Throttling(b *testing.B) {
	runArtifact(b, "ext7742", map[string]string{
		"rel_7502": "frac/7502", "rel_7742": "frac/7742",
	})
}

// --- Scheduler ---

// BenchmarkRunAllSerial and BenchmarkRunAllParallel measure the full-suite
// wall time through the serial runner and the worker-pool scheduler. The
// experiments are independent simulations, so the parallel run should scale
// to ≥2× on 4+ cores (compare ns/op between the two).
func BenchmarkRunAllSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunAll(core.Options{Scale: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	workers := runtime.NumCPU()
	b.ReportMetric(float64(workers), "workers")
	for i := 0; i < b.N; i++ {
		if _, err := core.RunAllParallel(core.Options{Scale: 0.1, Seed: 1}, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Monolithic and BenchmarkFig7Sharded measure the tentpole of
// the shard redesign on its headline case: fig7's C-state enumeration
// sweep run serially on one goroutine versus fanned shard-by-shard across
// the worker pool. Both compute byte-identical results; compare ns/op for
// the intra-experiment speedup (visible on multi-core runners; this dev
// container has a single CPU).
func BenchmarkFig7Monolithic(b *testing.B) {
	e, err := core.ByID("fig7")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(core.Options{Scale: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Sharded(b *testing.B) {
	workers := runtime.NumCPU()
	b.ReportMetric(float64(workers), "workers")
	for i := 0; i < b.N; i++ {
		if _, err := core.RunIDs([]string{"fig7"}, core.Options{Scale: 1, Seed: 1}, workers, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepBatchedVsSequential measures the sweep-first API's
// headline: one batched 4-configuration sweep (one merged shard set over
// every (config, experiment, shard) triple, one worker pool) against the
// same four configurations submitted as sequential single runs. Both
// compute byte-identical per-config documents; the batched form keeps the
// pool saturated across configuration boundaries, so the gap widens with
// core count (this dev container has a single CPU; see CI's BENCH_4
// artifact for multi-core numbers).
func BenchmarkSweepBatchedVsSequential(b *testing.B) {
	ids := []string{"fig7"}
	configs := core.Grid([]float64{0.5}, []uint64{1, 2, 3, 4})
	workers := runtime.NumCPU()

	b.Run("batched", func(b *testing.B) {
		b.ReportMetric(float64(workers), "workers")
		for i := 0; i < b.N; i++ {
			if _, err := core.RunSweep(core.Sweep{IDs: ids, Configs: configs},
				core.RunConfig{Workers: workers}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportMetric(float64(workers), "workers")
		for i := 0; i < b.N; i++ {
			for _, c := range configs {
				if _, err := core.RunIDs(ids, c, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSweepMemory pins the streaming sweep pipeline's memory bound:
// peak live heap across the full stream path (scheduler → MarshalResults →
// SweepWriter) must track the configurations in flight, not the sweep
// size. Every completed configuration forces a GC and samples the live
// heap over the pre-run baseline; compare live-B/config across the
// sub-benchmarks — quadrupling the config count should leave it roughly
// flat (sublinear growth of the peak), where the old collect-everything
// pipeline grew it linearly.
func BenchmarkSweepMemory(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("configs=%d", n), func(b *testing.B) {
			seeds := make([]uint64, n)
			for i := range seeds {
				seeds[i] = uint64(i + 1)
			}
			sw := core.Sweep{IDs: []string{"fig1", "sec5a"}, Configs: core.Grid([]float64{0.2}, seeds)}
			ids, err := core.CanonicalIDs(sw.IDs)
			if err != nil {
				b.Fatal(err)
			}
			var peak uint64
			for i := 0; i < b.N; i++ {
				runtime.GC()
				var base runtime.MemStats
				runtime.ReadMemStats(&base)
				w, err := report.NewSweepWriter(io.Discard, ids, sw.Configs)
				if err != nil {
					b.Fatal(err)
				}
				// onConfig runs on a scheduler worker goroutine, so failures
				// are carried out rather than b.Fatal'ed in place.
				var cbErr error
				err = core.RunSweepStream(sw, core.RunConfig{Workers: 2}, func(k int, cr core.ConfigResult, cerr error) {
					if cbErr != nil || cerr != nil {
						return
					}
					doc, merr := report.MarshalResults(cr.Results, cr.Config)
					if merr != nil {
						cbErr = merr
						return
					}
					if werr := w.WriteSection(k, doc); werr != nil {
						cbErr = werr
						return
					}
					runtime.GC()
					var ms runtime.MemStats
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > base.HeapAlloc && ms.HeapAlloc-base.HeapAlloc > peak {
						peak = ms.HeapAlloc - base.HeapAlloc
					}
				}, nil)
				if err == nil {
					err = cbErr
				}
				if err == nil {
					err = w.Close()
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(peak), "live-B/peak")
			b.ReportMetric(float64(peak)/float64(n), "live-B/config")
		})
	}
}

// --- Service ---

// submitServiceJob posts a job spec to a zen2eed instance and returns the
// job's content-addressed ID.
func submitServiceJob(b *testing.B, base, spec string) string {
	b.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	if st.ID == "" {
		b.Fatalf("submission rejected with status %d", resp.StatusCode)
	}
	return st.ID
}

// waitServiceJob blocks on the job's SSE stream, which closes when the job
// reaches a terminal state.
func waitServiceJob(b *testing.B, base, id string) {
	b.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServiceColdRun measures the daemon's uncached job path end to
// end over HTTP: submit, stream progress, run the simulation, encode. Each
// iteration uses a fresh seed so the content-addressed cache never hits.
func BenchmarkServiceColdRun(b *testing.B) {
	srv := service.New(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := fmt.Sprintf(`{"ids":["sec5a"],"scale":0.2,"seed":%d}`, i+1)
		waitServiceJob(b, ts.URL, submitServiceJob(b, ts.URL, spec))
	}
}

// BenchmarkServiceCachedRun measures the hit path — the "millions of users"
// traffic shape where identical requests are served from the
// content-addressed cache without touching the simulator. Compare ns/op
// against BenchmarkServiceColdRun for the cache's leverage.
func BenchmarkServiceCachedRun(b *testing.B) {
	srv := service.New(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const spec = `{"ids":["sec5a"],"scale":0.2,"seed":1}`
	waitServiceJob(b, ts.URL, submitServiceJob(b, ts.URL, spec))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitServiceJob(b, ts.URL, spec)
	}
}

// --- Ablations ---

// BenchmarkAblationSlotGrid contrasts the Zen 2 transition timing (1 ms
// grid, ~390 µs ramp) with the Intel Haswell baseline (500 µs, 21–24 µs).
func BenchmarkAblationSlotGrid(b *testing.B) {
	measure := func(sys *System) float64 {
		sys.SetFrequencyMHz(0, 2200)
		sys.Run(0, "busywait")
		sys.AdvanceMillis(20)
		total := 0.0
		const n = 20
		for i := 0; i < n; i++ {
			target := 1500
			if i%2 == 1 {
				target = 2200
			}
			sys.SetFrequencyMHz(0, target)
			us := 0.0
			for sys.CoreGHz(0) != float64(target)/1000 && us < 20000 {
				sys.AdvanceMicros(10)
				us += 10
			}
			total += us
			sys.AdvanceMillis(7)
		}
		return total / n
	}
	var zen, intel float64
	for i := 0; i < b.N; i++ {
		zen = measure(NewSystem(WithSeed(uint64(i + 1))))
		intel = measure(NewSystem(WithSeed(uint64(i+1)), WithIntelSlotGrid()))
	}
	b.ReportMetric(zen, "µs/zen2")
	b.ReportMetric(intel, "µs/intel")
	if intel >= zen {
		b.Fatalf("Intel grid (%v µs) should beat Zen 2 (%v µs)", intel, zen)
	}
}

// BenchmarkAblationNoEDC reruns the Fig. 6 load without the SMU throttle
// loops: frequency stays at nominal and power rises far beyond the Fig. 6
// measurement.
func BenchmarkAblationNoEDC(b *testing.B) {
	run := func(opts ...Option) (float64, float64) {
		sys := NewSystem(opts...)
		sys.SetAllFrequenciesMHz(2500)
		for cpu := 0; cpu < sys.NumCPUs(); cpu++ {
			sys.Run(cpu, "firestarter")
		}
		sys.AdvanceMillis(300)
		return sys.CoreGHz(0), sys.PowerWatts()
	}
	var fOn, pOn, fOff, pOff float64
	for i := 0; i < b.N; i++ {
		fOn, pOn = run(WithSeed(uint64(i + 1)))
		fOff, pOff = run(WithSeed(uint64(i+1)), WithoutEDCManager())
	}
	b.ReportMetric(fOn, "GHz/edc")
	b.ReportMetric(fOff, "GHz/noedc")
	b.ReportMetric(pOn, "W/edc")
	b.ReportMetric(pOff, "W/noedc")
	if fOff <= fOn {
		b.Fatal("ablated EDC did not raise frequency")
	}
}

// BenchmarkAblationCCXCoupling reruns the Table I headline cell with the
// coupling model disabled.
func BenchmarkAblationCCXCoupling(b *testing.B) {
	run := func(opts ...Option) float64 {
		sys := NewSystem(opts...)
		sys.SetFrequencyMHz(0, 2200)
		sys.Run(0, "busywait")
		for c := 1; c < 4; c++ {
			sys.SetFrequencyMHz(c, 2500)
			sys.Run(c, "busywait")
		}
		sys.AdvanceMillis(50)
		return sys.CoreGHz(0)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(WithSeed(uint64(i + 1)))
		without = run(WithSeed(uint64(i+1)), WithoutCCXCoupling())
	}
	b.ReportMetric(with, "GHz/coupled")
	b.ReportMetric(without, "GHz/ablated")
	if without <= with {
		b.Fatal("coupling ablation had no effect")
	}
}

// BenchmarkAblationRAPLMeasured contrasts AMD's modeled RAPL with a
// Haswell-style measured RAPL: on the measured baseline a single function
// maps domain power to AC power; on Zen 2 the memory workloads break any
// such function (the Fig. 9 finding).
func BenchmarkAblationRAPLMeasured(b *testing.B) {
	intel := intelmodel.HaswellRAPL()
	var spreadAMD, spreadIntel float64
	for i := 0; i < b.N; i++ {
		e, err := core.ByID("fig9")
		if err != nil {
			b.Fatal(err)
		}
		r, err := e.Run(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		acs := r.Series["ac_watts"]
		pkgs := r.Series["rapl_pkg_watts"]
		// AMD: spread of AC-to-RAPL ratios across workloads.
		minR, maxR := 10.0, 0.0
		for j := range acs {
			ratio := pkgs[j] / acs[j]
			if ratio < minR {
				minR = ratio
			}
			if ratio > maxR {
				maxR = ratio
			}
		}
		spreadAMD = maxR - minR
		// Intel baseline: a measured RAPL covering DRAM reproduces AC
		// through one function; residual spread is the instrument error.
		spreadIntel = 2 * intel.MeasurementErrorRel
	}
	b.ReportMetric(spreadAMD, "ratio-spread/amd")
	b.ReportMetric(spreadIntel, "ratio-spread/intel")
	if spreadAMD <= spreadIntel {
		b.Fatal("modeled RAPL should show a much wider AC-ratio spread than measured RAPL")
	}
}

// BenchmarkAblationIntelBaseline contrasts the per-active-core idle cost:
// ~0.33 W on Rome vs ~3.5 W on Skylake-SP (about 10×).
func BenchmarkAblationIntelBaseline(b *testing.B) {
	skl := intelmodel.SkylakeIdle()
	var amdSlope float64
	for i := 0; i < b.N; i++ {
		sys := NewSystem(WithSeed(uint64(i + 1)))
		sys.SetAllFrequenciesMHz(2500)
		sys.AdvanceMillis(20)
		sys.Run(0, "pause")
		sys.AdvanceMillis(5)
		p1 := sys.PowerWatts()
		for cpu := 1; cpu <= 16; cpu++ {
			sys.Run(cpu, "pause")
		}
		sys.AdvanceMillis(5)
		amdSlope = (sys.PowerWatts() - p1) / 16
	}
	intelSlope := skl.SystemWatts(2) - skl.SystemWatts(1)
	b.ReportMetric(amdSlope, "W/amdcore")
	b.ReportMetric(intelSlope, "W/intelcore")
	if intelSlope < 8*amdSlope {
		b.Fatalf("Skylake per-core cost (%v) should be ~10x Rome (%v)", intelSlope, amdSlope)
	}
}

// BenchmarkMachineRefresh measures the cost of the machine's state
// recomputation — the simulator's hot path.
func BenchmarkMachineRefresh(b *testing.B) {
	sys := NewSystem()
	sys.SetAllFrequenciesMHz(2500)
	for cpu := 0; cpu < sys.NumCPUs(); cpu++ {
		sys.Run(cpu, "busywait")
	}
	sys.AdvanceMillis(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.AdvanceMicros(100)
	}
}

var _ = sim.Millisecond
